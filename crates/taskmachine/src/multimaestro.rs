//! Multi-Maestro mode: a discrete-event model of *sharded* hardware
//! dependency resolution.
//!
//! Where [`machine`](crate::machine) models the paper's single Task
//! Maestro faithfully (five pipelined blocks, one Task Pool, one
//! Dependence Table), this module models the scaled-out design the
//! ROADMAP's north star asks for: **S** Maestro shards, each owning an
//! address partition with its own Task Pool slice and Dependence Table
//! (the semantics of [`ShardedEngine`]), fed through a **crossbar** —
//! per-shard round-robin arbiters over the request lines of the master
//! core and every worker's finish stream, the same
//! [`RoundRobinArbiter`] scan the single Maestro's `Send TDs` /
//! `Handle Finished` blocks use.
//!
//! Timing model (deliberately coarser than `machine`, focused on the
//! resolution fabric that sharding changes):
//!
//! * A task's admit+check decomposes into one **submit job** per involved
//!   shard, costing a fixed base plus the SRAM access time of that
//!   shard's pool/table touches (the paper's "on-chip access time
//!   multiplied by the number of lookups"). Jobs on different shards are
//!   serviced concurrently; a shard services one job at a time.
//! * Submissions are **batched** (the buffered-TP-write idea): up to
//!   `batch` consecutive tasks coalesce into a single job per involved
//!   shard, paying one base per shard per batch instead of one per task.
//! * A finished task likewise issues one **finish job** per involved
//!   shard from its worker's request line.
//! * Each shard owns a **kick-off FIFO** — a separate, *non-arbitrated*
//!   resource modeling the lock-free wake lists of the software
//!   dispatcher (`nexuspp_shard::dispatch`) and the paper Maestro's
//!   kick-off delivery: when a shard's finish job completes, the tasks
//!   that release made ready enter that shard's FIFO immediately (no
//!   crossbar grant, no shard occupancy) and drain serially at
//!   [`MultiMaestroConfig::kickoff_cycles`] per wake. Per-shard peak
//!   depths and delivery counts are reported — the fan-in pressure
//!   `repro -- wakes` sweeps.
//! * Worker cores execute ready tasks for their trace `exec` time;
//!   memory modeling is out of scope here (use `machine` for that).
//!
//! The semantic engine runs eagerly at job *generation* (the model's
//! event order is a legal serial execution), so this mode inherits the
//! differentially-verified readiness semantics unchanged; only time is
//! modeled around it.

use nexuspp_core::pool::PoolError;
use nexuspp_core::{NexusConfig, ShardCapacity};
use nexuspp_desim::clock::NEXUS_CLOCK_MHZ;
use nexuspp_desim::stats::BusyTracker;
use nexuspp_desim::{Clock, RoundRobinArbiter, Scheduler, SimTime};
use nexuspp_hw::SramTiming;
use nexuspp_shard::{ShardedCheck, ShardedEngine, TaskId};
use nexuspp_trace::Trace;
use std::collections::VecDeque;

/// Multi-Maestro configuration.
#[derive(Debug, Clone)]
pub struct MultiMaestroConfig {
    /// Maestro shards (address partitions).
    pub shards: usize,
    /// Worker cores.
    pub workers: usize,
    /// Submissions coalesced per shard visit (1 = unbatched).
    pub batch: usize,
    /// In-flight task window the master may run ahead (submission flow
    /// control; plays the role of the `TDs Sizes` backpressure).
    pub window: usize,
    /// Master task-preparation latency per task.
    pub prep_time: SimTime,
    /// Fixed cycles per submit job (Write TP + Check Deps bases).
    pub submit_base: u64,
    /// Fixed cycles per finish job (Handle Finished base).
    pub finish_base: u64,
    /// Cycles each kick-off notification spends leaving a shard's wake
    /// FIFO (the FIFO is non-arbitrated: delivery occupies neither the
    /// crossbar nor the shard, only the FIFO's own serial drain port).
    pub kickoff_cycles: u64,
    /// Per-shard SRAM timing.
    pub sram: SramTiming,
    /// Nexus++ clock domain.
    pub clock: Clock,
    /// Per-shard engine capacities. Must be growable (software tables
    /// virtualize in-shard storage); the *finite-hardware* bound is
    /// [`capacity`](Self::capacity).
    pub nexus: NexusConfig,
    /// Per-shard residency bound: each Maestro shard holds at most this
    /// many resident Task Descriptors. A submission hitting a full shard
    /// **stalls the master across the crossbar** — it stops preparing and
    /// sending Task Descriptors, exactly like the single-Maestro `machine`
    /// does on a full Task Pool — and retries when a finish phase
    /// completes at the shards (cycle-accounted: the master resumes at
    /// the finish job's crossbar completion time, not instantly).
    pub capacity: ShardCapacity,
}

impl Default for MultiMaestroConfig {
    fn default() -> Self {
        MultiMaestroConfig {
            shards: 4,
            workers: 8,
            batch: 8,
            window: 512,
            prep_time: SimTime::from_ns(30),
            submit_base: 4,
            finish_base: 6,
            kickoff_cycles: 1,
            sram: SramTiming::default(),
            clock: Clock::from_mhz(NEXUS_CLOCK_MHZ),
            nexus: NexusConfig::unbounded(),
            capacity: ShardCapacity::Unbounded,
        }
    }
}

impl MultiMaestroConfig {
    /// Default configuration at a given shard count.
    pub fn with_shards(shards: usize) -> Self {
        MultiMaestroConfig {
            shards,
            ..Default::default()
        }
    }

    /// Default configuration at a given shard count and residency bound.
    pub fn with_capacity(shards: usize, capacity: ShardCapacity) -> Self {
        MultiMaestroConfig {
            capacity,
            ..Self::with_shards(shards)
        }
    }

    /// Disable the master's preparation delay (resolution-bound studies).
    pub fn no_prep(mut self) -> Self {
        self.prep_time = SimTime::ZERO;
        self
    }

    /// Validate structural requirements.
    pub fn validate(&self) {
        assert!(self.shards >= 1, "need at least one shard");
        assert!(self.workers >= 1, "need at least one worker");
        assert!(self.batch >= 1, "batch must be >= 1");
        assert!(self.window >= self.batch, "window must cover one batch");
        assert!(self.kickoff_cycles >= 1, "kick-off delivery needs a cycle");
        assert!(
            self.nexus.growable,
            "multi-Maestro mode virtualizes table storage; use a growable NexusConfig \
             (bound residency via capacity)"
        );
        self.capacity.validate();
    }
}

/// Simulation results.
#[derive(Debug, Clone)]
pub struct MultiMaestroReport {
    /// Shards simulated.
    pub shards: usize,
    /// Worker cores simulated.
    pub workers: usize,
    /// Tasks completed.
    pub tasks: u64,
    /// Time of the last completion.
    pub makespan: SimTime,
    /// Busy time per shard (the load-balance picture).
    pub shard_busy: Vec<SimTime>,
    /// Jobs serviced per shard.
    pub shard_jobs: Vec<u64>,
    /// Largest backlog observed on any single shard's crossbar queues.
    pub peak_shard_queue: usize,
    /// Submission batches flushed.
    pub batches: u64,
    /// Total crossbar grants issued.
    pub crossbar_grants: u64,
    /// Residency bound the run was simulated under.
    pub capacity: ShardCapacity,
    /// Master stall episodes: times the master parked on a full shard and
    /// stopped sending Task Descriptors (0 when `capacity` is unbounded).
    pub master_capacity_stalls: u64,
    /// Stall episodes attributed to each shard (the episode's first full
    /// shard).
    pub shard_stalls: Vec<u64>,
    /// Episodes resolved by a successful retry, per shard (equals
    /// `shard_stalls` element-wise once the run drains — every stall is
    /// eventually resolved).
    pub shard_retries_resolved: Vec<u64>,
    /// Deepest each shard's kick-off wake FIFO got: how many ready tasks
    /// were queued for delivery at once (wide fan-in piles wakes onto the
    /// producer's home shard).
    pub shard_wake_peak: Vec<usize>,
    /// Kick-off notifications delivered per shard (every task that was
    /// not ready at submission is delivered exactly once).
    pub shard_wakes_delivered: Vec<u64>,
}

impl MultiMaestroReport {
    /// Modeled resolution throughput in tasks per second.
    pub fn tasks_per_sec(&self) -> f64 {
        if self.makespan.is_zero() {
            return 0.0;
        }
        self.tasks as f64 / (self.makespan.as_ns_f64() * 1e-9)
    }

    /// Busy-time imbalance: busiest shard over mean shard busy time
    /// (1.0 = perfectly balanced; ≈ shard count = single hot shard).
    pub fn imbalance(&self) -> f64 {
        let total: f64 = self.shard_busy.iter().map(|t| t.as_ns_f64()).sum();
        if total == 0.0 {
            return 1.0;
        }
        let max = self
            .shard_busy
            .iter()
            .map(|t| t.as_ns_f64())
            .fold(0.0, f64::max);
        max * self.shard_busy.len() as f64 / total
    }
}

#[derive(Debug, Clone)]
#[allow(clippy::enum_variant_names)] // the variants name completion edges
enum Ev {
    /// Master finished preparing the next task.
    PrepDone,
    /// Shard `s` finished its current job.
    ShardDone(u32),
    /// Worker `w` finished executing its task.
    ExecDone(u32),
    /// Shard `s`'s kick-off FIFO delivered its front wake.
    WakeDone(u32),
}

/// A buffered submission awaiting its batch flush: home record, its
/// readiness verdict, and the admit+check access tally per shard.
type BufferedSubmit = (TaskId, bool, Vec<(u32, u64)>);

/// What completing a phase (all of an operation's per-shard jobs) means.
#[derive(Debug)]
enum PhaseKind {
    /// A submission batch: release each member that checked ready.
    Submit { members: Vec<(TaskId, bool)> },
    /// A task completion: count it at phase completion. Its wake-ups do
    /// not wait for the phase — each involved shard's slice-release
    /// wakes (`wakes`, per shard) enter that shard's kick-off FIFO the
    /// moment *that shard's* finish job completes.
    Finish { wakes: Vec<(u32, Vec<TaskId>)> },
}

#[derive(Debug)]
struct Phase {
    jobs_left: u32,
    kind: PhaseKind,
}

/// One unit of shard service: part of a phase, with a service time.
#[derive(Debug, Clone, Copy)]
struct Job {
    phase: usize,
    dur: SimTime,
}

/// Per-task bookkeeping (indexed by the engine's reusable `TaskId`).
#[derive(Debug, Clone, Copy, Default)]
struct Meta {
    exec: SimTime,
    submit_done: bool,
    woken: bool,
}

struct Sim<'t> {
    cfg: MultiMaestroConfig,
    trace: &'t Trace,
    engine: ShardedEngine,
    sched: Scheduler<Ev>,
    // Master.
    cursor: usize,
    prepping: bool,
    batch_buf: Vec<BufferedSubmit>,
    in_window: usize,
    /// Trace index of a prepared task whose admission found a shard
    /// full: the master is stalled and sends nothing until a finish
    /// phase frees a slot.
    parked: Option<usize>,
    /// The current stall episode's first full shard (counter attribution).
    episode_shard: Option<u32>,
    shard_stalls: Vec<u64>,
    shard_retries_resolved: Vec<u64>,
    // Phases.
    phases: Vec<Option<Phase>>,
    free_phases: Vec<usize>,
    // Crossbar: per shard, one queue per source (0 = master, 1+w = worker w).
    queues: Vec<Vec<VecDeque<Job>>>,
    arbs: Vec<RoundRobinArbiter>,
    current: Vec<Option<Job>>,
    busy: Vec<BusyTracker>,
    peak_queue: usize,
    // Kick-off FIFOs: one per shard, non-arbitrated, serial drain.
    wake_fifo: Vec<VecDeque<TaskId>>,
    wake_busy: Vec<bool>,
    wake_peak: Vec<usize>,
    wakes_delivered: Vec<u64>,
    /// Tasks whose check found unresolved dependencies: each must be
    /// delivered through some kick-off FIFO exactly once (asserted at
    /// drain).
    kickoffs_expected: u64,
    // Workers.
    ready: VecDeque<TaskId>,
    free_workers: Vec<u32>,
    running: Vec<Option<TaskId>>,
    // Tasks.
    meta: Vec<Meta>,
    completed: u64,
    makespan: SimTime,
    batches: u64,
}

impl<'t> Sim<'t> {
    fn new(cfg: MultiMaestroConfig, trace: &'t Trace) -> Self {
        cfg.validate();
        let s = cfg.shards;
        let sources = 1 + cfg.workers;
        Sim {
            engine: ShardedEngine::with_capacity(s, &cfg.nexus, cfg.capacity),
            sched: Scheduler::new(),
            cursor: 0,
            prepping: false,
            batch_buf: Vec::new(),
            in_window: 0,
            parked: None,
            episode_shard: None,
            shard_stalls: vec![0; s],
            shard_retries_resolved: vec![0; s],
            phases: Vec::new(),
            free_phases: Vec::new(),
            queues: (0..s)
                .map(|_| (0..sources).map(|_| VecDeque::new()).collect())
                .collect(),
            arbs: (0..s).map(|_| RoundRobinArbiter::new(sources)).collect(),
            current: vec![None; s],
            busy: (0..s).map(|_| BusyTracker::new()).collect(),
            peak_queue: 0,
            wake_fifo: (0..s).map(|_| VecDeque::new()).collect(),
            wake_busy: vec![false; s],
            wake_peak: vec![0; s],
            wakes_delivered: vec![0; s],
            kickoffs_expected: 0,
            ready: VecDeque::new(),
            free_workers: (0..cfg.workers as u32).rev().collect(),
            running: vec![None; cfg.workers],
            meta: Vec::new(),
            completed: 0,
            makespan: SimTime::ZERO,
            batches: 0,
            cfg,
            trace,
        }
    }

    fn meta_mut(&mut self, id: TaskId) -> &mut Meta {
        let i = id.0 as usize;
        if i >= self.meta.len() {
            self.meta.resize(i + 1, Meta::default());
        }
        &mut self.meta[i]
    }

    fn alloc_phase(&mut self, phase: Phase) -> usize {
        match self.free_phases.pop() {
            Some(i) => {
                self.phases[i] = Some(phase);
                i
            }
            None => {
                self.phases.push(Some(phase));
                self.phases.len() - 1
            }
        }
    }

    fn job_time(&self, base: u64, accesses: u64) -> SimTime {
        self.cfg.clock.cycles(base) + self.cfg.sram.access_time(accesses)
    }

    /// Enqueue one job on `shard` from `source` and poke the crossbar.
    fn enqueue(&mut self, shard: u32, source: usize, job: Job) {
        let s = shard as usize;
        self.queues[s][source].push_back(job);
        let backlog: usize = self.queues[s].iter().map(|q| q.len()).sum();
        if backlog > self.peak_queue {
            self.peak_queue = backlog;
        }
        self.poll_shard(s);
    }

    /// Crossbar scan: grant the next queued source on an idle shard.
    fn poll_shard(&mut self, s: usize) {
        if self.current[s].is_some() {
            return;
        }
        let queues = &self.queues[s];
        let Some(src) = self.arbs[s].grant(|i| !queues[i].is_empty()) else {
            return;
        };
        let job = self.queues[s][src].pop_front().expect("granted non-empty");
        self.busy[s].record_busy(job.dur);
        self.current[s] = Some(job);
        self.sched.schedule(job.dur, Ev::ShardDone(s as u32));
    }

    // --------------------------------------------------------------
    // Master: prepare, admit eagerly, batch, flush.
    // --------------------------------------------------------------

    fn poll_master(&mut self) {
        if self.prepping {
            return;
        }
        if self.parked.is_some()
            || self.cursor >= self.trace.len()
            || self.in_window >= self.cfg.window
        {
            // Can't continue right now: ship whatever is buffered (a
            // stalled master must still flush, or the resident tasks the
            // retry waits on would never become runnable).
            if !self.batch_buf.is_empty() {
                self.flush_batch();
            }
            return;
        }
        self.prepping = true;
        self.sched.schedule(self.cfg.prep_time, Ev::PrepDone);
    }

    fn on_prep_done(&mut self) {
        self.prepping = false;
        let idx = self.cursor;
        self.cursor += 1;
        self.ingest(idx);
        self.poll_master();
    }

    /// Admit the prepared trace record at `idx` into the sharded engine,
    /// or park the master on the full shard (stall episode counted once,
    /// against the first rejecting shard).
    fn ingest(&mut self, idx: usize) {
        let rec = &self.trace.tasks[idx];
        let (id, admit_cost) = match self.engine.try_admit(rec.fptr, rec.id, rec.params.clone()) {
            Ok(v) => v,
            Err(rej) => {
                debug_assert!(
                    matches!(rej.error, PoolError::PoolFull { .. }),
                    "residency rejections are always retryable: {rej:?}"
                );
                if self.episode_shard.is_none() {
                    self.episode_shard = Some(rej.shard);
                    self.shard_stalls[rej.shard as usize] += 1;
                }
                self.parked = Some(idx);
                // The stalled master sends nothing more; ship what it
                // already buffered so completions can free the shard.
                if !self.batch_buf.is_empty() {
                    self.flush_batch();
                }
                return;
            }
        };
        if let Some(first) = self.episode_shard.take() {
            self.shard_retries_resolved[first as usize] += 1;
        }
        self.in_window += 1;
        let (ready, check_cost) = match self.engine.check(id) {
            ShardedCheck::Done { ready, cost } => (ready, cost),
            ShardedCheck::Stalled { .. } => unreachable!("growable engine cannot stall"),
        };
        if !ready {
            self.kickoffs_expected += 1;
        }
        let exec = rec.exec;
        let m = self.meta_mut(id);
        *m = Meta {
            exec,
            submit_done: false,
            woken: false,
        };
        // Fold admit+check into one per-shard access tally.
        let mut per_shard: Vec<(u32, u64)> = Vec::new();
        for (s, c) in admit_cost
            .per_shard
            .iter()
            .chain(check_cost.per_shard.iter())
        {
            match per_shard.iter_mut().find(|(g, _)| g == s) {
                Some((_, n)) => *n += c.total(),
                None => per_shard.push((*s, c.total())),
            }
        }
        self.batch_buf.push((id, ready, per_shard));
        if self.batch_buf.len() >= self.cfg.batch {
            self.flush_batch();
        }
    }

    /// Retry the parked admission after a finish phase completed at the
    /// shards (the stall/retry handshake's wake edge — the master resumes
    /// at crossbar finish-completion time).
    fn retry_parked(&mut self) {
        if let Some(idx) = self.parked.take() {
            self.ingest(idx);
        }
    }

    /// Ship the buffered submissions: one job per involved shard, paying
    /// one base per shard for the whole batch (buffered TP writes).
    fn flush_batch(&mut self) {
        let members: Vec<(TaskId, bool)> =
            self.batch_buf.iter().map(|(id, r, _)| (*id, *r)).collect();
        let mut shard_accesses: Vec<(u32, u64)> = Vec::new();
        for (_, _, per_shard) in self.batch_buf.drain(..) {
            for (s, n) in per_shard {
                match shard_accesses.iter_mut().find(|(g, _)| *g == s) {
                    Some((_, t)) => *t += n,
                    None => shard_accesses.push((s, n)),
                }
            }
        }
        self.batches += 1;
        let phase = self.alloc_phase(Phase {
            jobs_left: shard_accesses.len() as u32,
            kind: PhaseKind::Submit { members },
        });
        if shard_accesses.is_empty() {
            // Batch of parameterless tasks: no shard work at all.
            self.complete_phase(phase);
            return;
        }
        let base = self.cfg.submit_base;
        for (s, accesses) in shard_accesses {
            let dur = self.job_time(base, accesses);
            self.enqueue(s, 0, Job { phase, dur });
        }
    }

    // --------------------------------------------------------------
    // Shard job + phase completion.
    // --------------------------------------------------------------

    fn on_shard_done(&mut self, s: usize) {
        let job = self.current[s].take().expect("ShardDone while idle");
        let (kickoff, done) = {
            let phase = self.phases[job.phase].as_mut().expect("live phase");
            phase.jobs_left -= 1;
            // A finish job's completion is the moment this shard's slice
            // release lands: its wakes enter the kick-off FIFO now, not
            // at whole-phase completion.
            let kickoff = match &mut phase.kind {
                PhaseKind::Finish { wakes } => wakes
                    .iter()
                    .position(|(g, _)| *g as usize == s)
                    .map(|i| wakes.swap_remove(i).1),
                PhaseKind::Submit { .. } => None,
            };
            (kickoff, phase.jobs_left == 0)
        };
        if let Some(wakes) = kickoff {
            self.post_kickoff(s, wakes);
        }
        if done {
            self.complete_phase(job.phase);
        }
        self.poll_shard(s);
    }

    /// Queue `wakes` on shard `s`'s kick-off FIFO and start its serial
    /// drain if idle. The FIFO is non-arbitrated: posting costs no shard
    /// or crossbar time, only the per-wake drain latency.
    fn post_kickoff(&mut self, s: usize, wakes: Vec<TaskId>) {
        if wakes.is_empty() {
            return;
        }
        let fifo = &mut self.wake_fifo[s];
        fifo.extend(wakes);
        if fifo.len() > self.wake_peak[s] {
            self.wake_peak[s] = fifo.len();
        }
        if !self.wake_busy[s] {
            self.wake_busy[s] = true;
            self.sched.schedule(
                self.cfg.clock.cycles(self.cfg.kickoff_cycles),
                Ev::WakeDone(s as u32),
            );
        }
    }

    fn on_wake_done(&mut self, s: usize) {
        let id = self.wake_fifo[s]
            .pop_front()
            .expect("WakeDone on an empty kick-off FIFO");
        self.wakes_delivered[s] += 1;
        let m = self.meta_mut(id);
        m.woken = true;
        if m.submit_done {
            self.ready.push_back(id);
        }
        if self.wake_fifo[s].is_empty() {
            self.wake_busy[s] = false;
        } else {
            self.sched.schedule(
                self.cfg.clock.cycles(self.cfg.kickoff_cycles),
                Ev::WakeDone(s as u32),
            );
        }
        self.poll_workers();
    }

    fn complete_phase(&mut self, idx: usize) {
        let phase = self.phases[idx].take().expect("phase completed twice");
        self.free_phases.push(idx);
        match phase.kind {
            PhaseKind::Submit { members } => {
                for (id, ready) in members {
                    let m = self.meta_mut(id);
                    m.submit_done = true;
                    if ready || m.woken {
                        self.ready.push_back(id);
                    }
                }
            }
            PhaseKind::Finish { wakes } => {
                debug_assert!(
                    wakes.is_empty(),
                    "every involved shard's job completion must have posted its wakes"
                );
                self.completed += 1;
                self.in_window -= 1;
                self.makespan = self.sched.now();
                // A finish phase is the wake edge for a stalled master.
                self.retry_parked();
                self.poll_master();
            }
        }
        self.poll_workers();
    }

    // --------------------------------------------------------------
    // Workers.
    // --------------------------------------------------------------

    fn poll_workers(&mut self) {
        while let (Some(&w), false) = (self.free_workers.last(), self.ready.is_empty()) {
            self.free_workers.pop();
            let id = self.ready.pop_front().expect("checked non-empty");
            let exec = self.meta[id.0 as usize].exec;
            self.running[w as usize] = Some(id);
            self.sched.schedule(exec, Ev::ExecDone(w));
        }
    }

    fn on_exec_done(&mut self, w: u32) {
        let id = self.running[w as usize]
            .take()
            .expect("ExecDone while idle");
        self.free_workers.push(w);
        let fin = self.engine.finish(id);
        let phase = self.alloc_phase(Phase {
            jobs_left: fin.cost.per_shard.len() as u32,
            kind: PhaseKind::Finish {
                wakes: fin.wakes_by_shard,
            },
        });
        if fin.cost.per_shard.is_empty() {
            // Parameterless task: completes without touching any shard.
            self.complete_phase(phase);
        } else {
            let base = self.cfg.finish_base;
            let source = 1 + w as usize;
            for (s, c) in fin.cost.per_shard {
                let dur = self.job_time(base, c.total());
                self.enqueue(s, source, Job { phase, dur });
            }
        }
        self.poll_workers();
    }

    fn run(mut self) -> MultiMaestroReport {
        self.poll_master();
        while let Some((_, ev)) = self.sched.pop() {
            match ev {
                Ev::PrepDone => self.on_prep_done(),
                Ev::ShardDone(s) => self.on_shard_done(s as usize),
                Ev::ExecDone(w) => self.on_exec_done(w),
                Ev::WakeDone(s) => self.on_wake_done(s as usize),
            }
        }
        assert_eq!(
            self.completed,
            self.trace.len() as u64,
            "multi-Maestro deadlock: {} of {} tasks completed",
            self.completed,
            self.trace.len()
        );
        assert_eq!(self.engine.in_flight(), 0, "leaked in-flight tasks");
        assert!(self.parked.is_none(), "master still parked at drain");
        assert!(
            self.wake_fifo.iter().all(|f| f.is_empty()),
            "undelivered kick-off notifications at drain"
        );
        assert!(self.wake_busy.iter().all(|b| !b), "kick-off drain leaked");
        assert_eq!(
            self.wakes_delivered.iter().sum::<u64>(),
            self.kickoffs_expected,
            "every task that parked at its check must be kicked off exactly once"
        );
        debug_assert_eq!(
            self.shard_stalls, self.shard_retries_resolved,
            "every stall episode must resolve by drain time"
        );
        MultiMaestroReport {
            shards: self.cfg.shards,
            workers: self.cfg.workers,
            tasks: self.completed,
            makespan: self.makespan,
            shard_busy: self.busy.iter().map(|b| b.busy_time()).collect(),
            shard_jobs: self.busy.iter().map(|b| b.ops()).collect(),
            peak_shard_queue: self.peak_queue,
            batches: self.batches,
            crossbar_grants: self.arbs.iter().map(|a| a.grants()).sum(),
            capacity: self.cfg.capacity,
            master_capacity_stalls: self.shard_stalls.iter().sum(),
            shard_stalls: self.shard_stalls,
            shard_retries_resolved: self.shard_retries_resolved,
            shard_wake_peak: self.wake_peak,
            shard_wakes_delivered: self.wakes_delivered,
        }
    }
}

/// Simulate `trace` through `cfg.shards` Maestro shards.
pub fn simulate_sharded(cfg: MultiMaestroConfig, trace: &Trace) -> MultiMaestroReport {
    Sim::new(cfg, trace).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexuspp_workloads::{GaussianSpec, ShardedStressSpec};

    /// Resolution-bound configuration: no prep delay, zero-exec handled
    /// by the workload, plenty of workers.
    fn resolution_bound(shards: usize) -> MultiMaestroConfig {
        MultiMaestroConfig {
            workers: 16,
            ..MultiMaestroConfig::with_shards(shards).no_prep()
        }
    }

    fn balanced(n: u32) -> nexuspp_trace::Trace {
        ShardedStressSpec {
            exec_ns: 0,
            ..ShardedStressSpec::balanced(n, 4)
        }
        .generate()
    }

    #[test]
    fn completes_every_task_and_balances_shards() {
        let trace = balanced(2000);
        let r = simulate_sharded(resolution_bound(4), &trace);
        assert_eq!(r.tasks, 2000);
        assert!(r.makespan > SimTime::ZERO);
        assert!(
            r.imbalance() < 1.5,
            "balanced stream must spread work (imbalance {:.2})",
            r.imbalance()
        );
        assert_eq!(r.shard_busy.len(), 4);
        assert!(r.batches >= 2000 / 8);
    }

    #[test]
    fn four_shards_at_least_double_one_shard_throughput() {
        // The acceptance bar for the sharded fabric: ≥ 2× modeled
        // resolution throughput at 4 shards on the balanced stream.
        let trace = balanced(4000);
        let t1 = simulate_sharded(resolution_bound(1), &trace).tasks_per_sec();
        let t4 = simulate_sharded(resolution_bound(4), &trace).tasks_per_sec();
        assert!(
            t4 >= 2.0 * t1,
            "4-shard throughput {t4:.0}/s must be >= 2x 1-shard {t1:.0}/s"
        );
    }

    #[test]
    fn shard_scaling_is_monotone_on_balanced_stream() {
        let trace = balanced(3000);
        let mk: Vec<f64> = [1usize, 2, 4, 8]
            .iter()
            .map(|&s| {
                simulate_sharded(resolution_bound(s), &trace)
                    .makespan
                    .as_ns_f64()
            })
            .collect();
        for w in mk.windows(2) {
            assert!(
                w[1] <= w[0] * 1.05,
                "more shards must not slow the balanced stream: {mk:?}"
            );
        }
    }

    #[test]
    fn hot_shard_skew_defeats_sharding() {
        // With every address on shard 0, 4 shards buy nothing: the hot
        // shard serializes, visible as imbalance ≈ shard count and a
        // makespan close to the 1-shard run.
        let hot = ShardedStressSpec {
            exec_ns: 0,
            ..ShardedStressSpec::hot_shard(2000, 4)
        }
        .generate();
        let r4 = simulate_sharded(resolution_bound(4), &hot);
        assert!(
            r4.imbalance() > 3.0,
            "single-hot-shard stream must overload one shard (imbalance {:.2})",
            r4.imbalance()
        );
        let balanced = balanced(2000);
        let rb = simulate_sharded(resolution_bound(4), &balanced);
        assert!(
            r4.makespan > rb.makespan,
            "hot-shard skew must cost throughput"
        );
    }

    #[test]
    fn batching_amortizes_shard_visits() {
        let trace = balanced(2000);
        let unbatched = simulate_sharded(
            MultiMaestroConfig {
                batch: 1,
                ..resolution_bound(4)
            },
            &trace,
        );
        let batched = simulate_sharded(
            MultiMaestroConfig {
                batch: 16,
                ..resolution_bound(4)
            },
            &trace,
        );
        assert!(batched.batches < unbatched.batches);
        assert!(
            batched.makespan < unbatched.makespan,
            "coalesced bases must shorten the resolution-bound makespan \
             (batched {} vs unbatched {})",
            batched.makespan,
            unbatched.makespan
        );
    }

    #[test]
    fn gaussian_dependencies_resolve_correctly_across_shards() {
        // A real dependency-rich workload (RAW fan-out, WAW chains) end
        // to end through the sharded fabric.
        let trace = GaussianSpec::new(24).trace();
        for shards in [1, 2, 4] {
            let r = simulate_sharded(MultiMaestroConfig::with_shards(shards), &trace);
            assert_eq!(r.tasks, trace.len() as u64, "shards={shards}");
        }
    }

    #[test]
    fn capacity_one_stress_drains_for_every_worker_count() {
        // The modeled half of the deadlock-freedom stress: the sim's own
        // drain assertion is the watchdog — a lost stall wake-up leaves
        // tasks unfinished and fails the run loudly.
        use nexuspp_workloads::CapacityStressSpec;
        let trace = CapacityStressSpec::pressure(2).generate();
        for workers in [1usize, 2, 4, 8] {
            let r = simulate_sharded(
                MultiMaestroConfig {
                    workers,
                    capacity: ShardCapacity::Bounded(1),
                    ..MultiMaestroConfig::with_shards(2).no_prep()
                },
                &trace,
            );
            assert_eq!(r.tasks, trace.len() as u64, "workers={workers}");
            assert_eq!(
                r.shard_stalls, r.shard_retries_resolved,
                "workers={workers}: unresolved stall episodes"
            );
        }
    }

    #[test]
    fn bounded_capacity_completes_under_pressure_and_accounts_stalls() {
        use nexuspp_workloads::CapacityStressSpec;
        for shards in [1usize, 2, 4] {
            let trace = CapacityStressSpec::pressure(shards as u32).generate();
            let r = simulate_sharded(
                MultiMaestroConfig {
                    capacity: ShardCapacity::Bounded(1),
                    ..resolution_bound(shards)
                },
                &trace,
            );
            assert_eq!(r.tasks, trace.len() as u64, "shards={shards}");
            assert_eq!(r.capacity, ShardCapacity::Bounded(1));
            assert!(
                r.master_capacity_stalls > 0,
                "shards={shards}: a fan-out wider than capacity 1 must stall the master"
            );
            assert_eq!(
                r.master_capacity_stalls,
                r.shard_stalls.iter().sum::<u64>(),
                "shards={shards}: episode total must equal per-shard attribution"
            );
            for s in 0..shards {
                assert_eq!(
                    r.shard_stalls[s], r.shard_retries_resolved[s],
                    "shards={shards} shard {s}: every stall episode must resolve"
                );
            }
        }
    }

    #[test]
    fn unbounded_capacity_reports_zero_stalls_and_is_never_slower() {
        use nexuspp_workloads::CapacityStressSpec;
        let trace = CapacityStressSpec::pressure(4).generate();
        let free = simulate_sharded(resolution_bound(4), &trace);
        assert_eq!(free.capacity, ShardCapacity::Unbounded);
        assert_eq!(free.master_capacity_stalls, 0);
        assert!(free.shard_stalls.iter().all(|&s| s == 0));
        assert!(free.shard_retries_resolved.iter().all(|&s| s == 0));
        let tight = simulate_sharded(
            MultiMaestroConfig {
                capacity: ShardCapacity::Bounded(1),
                ..resolution_bound(4)
            },
            &trace,
        );
        assert!(
            tight.makespan >= free.makespan,
            "stalling on capacity must not beat unbounded tables \
             (bounded {} vs unbounded {})",
            tight.makespan,
            free.makespan
        );
    }

    #[test]
    fn capacity_one_stalls_hardest_and_unbounded_never() {
        // Stall *episodes* are not monotone in capacity (a tight bound
        // parks longer per episode, a wider one parks more often but
        // briefly), so the principled claims are the endpoints: the
        // tightest bound stalls strictly most, the unbounded table never.
        use nexuspp_workloads::CapacityStressSpec;
        let trace = CapacityStressSpec::pressure(4).generate();
        let stalls: Vec<u64> = [
            ShardCapacity::Bounded(1),
            ShardCapacity::Bounded(4),
            ShardCapacity::Bounded(16),
            ShardCapacity::Unbounded,
        ]
        .into_iter()
        .map(|capacity| {
            simulate_sharded(
                MultiMaestroConfig {
                    capacity,
                    ..resolution_bound(4)
                },
                &trace,
            )
            .master_capacity_stalls
        })
        .collect();
        assert!(stalls[0] > 0, "capacity 1 must be under pressure");
        for (i, &s) in stalls.iter().enumerate().skip(1) {
            assert!(
                s < stalls[0],
                "capacity 1 must stall strictly most: {stalls:?} (index {i})"
            );
        }
        assert_eq!(*stalls.last().unwrap(), 0);
    }

    #[test]
    fn gaussian_resolves_identically_across_capacities() {
        // Dependency-rich workload: the bounded fabric must execute the
        // same task set at every capacity (the machine-level face of the
        // capacity-differential suite).
        let trace = GaussianSpec::new(20).trace();
        for capacity in [
            ShardCapacity::Bounded(1),
            ShardCapacity::Bounded(4),
            ShardCapacity::Unbounded,
        ] {
            let r = simulate_sharded(MultiMaestroConfig::with_capacity(2, capacity), &trace);
            assert_eq!(r.tasks, trace.len() as u64, "capacity={capacity}");
        }
    }

    #[test]
    fn kickoff_fifo_conserves_wakes_and_reports_fan_in_depth() {
        // Steal-stress shape: one root whose completion releases every
        // chain head at once — all of those kick-off notifications are
        // attributed to the root address's home shard, so that shard's
        // FIFO must peak at exactly `chains` while every other wake (the
        // one-wakes-one chain steps) passes through depth >= 1.
        use nexuspp_workloads::StealStressSpec;
        let spec = StealStressSpec {
            chains: 16,
            chain_len: 12,
            exec_ns: 0,
        };
        let trace = spec.generate();
        let r = simulate_sharded(resolution_bound(4), &trace);
        assert_eq!(r.tasks, trace.len() as u64);
        // Every task except the root parked at submit and was therefore
        // delivered through some shard's kick-off FIFO, exactly once.
        assert_eq!(
            r.shard_wakes_delivered.iter().sum::<u64>(),
            trace.len() as u64 - 1,
            "each parked task must be kicked off exactly once"
        );
        assert_eq!(
            r.shard_wake_peak.iter().copied().max().unwrap(),
            spec.chains as usize,
            "the root's burst must pile every chain head onto one FIFO"
        );
        assert_eq!(r.shard_wake_peak.len(), 4);
    }

    #[test]
    fn independent_tasks_never_touch_the_kickoff_fifos() {
        let trace = balanced(500);
        let r = simulate_sharded(resolution_bound(4), &trace);
        assert_eq!(r.tasks, 500);
        assert!(
            r.shard_wakes_delivered.iter().all(|&w| w == 0),
            "ready-at-submit tasks bypass kick-off: {:?}",
            r.shard_wakes_delivered
        );
        assert!(r.shard_wake_peak.iter().all(|&p| p == 0));
    }

    #[test]
    fn slower_kickoff_delivery_never_speeds_the_fan_in_stream() {
        use nexuspp_workloads::StealStressSpec;
        let trace = StealStressSpec {
            chains: 8,
            chain_len: 40,
            exec_ns: 0,
        }
        .generate();
        let fast = simulate_sharded(resolution_bound(2), &trace);
        let slow = simulate_sharded(
            MultiMaestroConfig {
                kickoff_cycles: 64,
                ..resolution_bound(2)
            },
            &trace,
        );
        assert_eq!(fast.tasks, slow.tasks);
        assert!(
            slow.makespan >= fast.makespan,
            "a 64x slower kick-off port cannot beat the 1-cycle port \
             (slow {} vs fast {})",
            slow.makespan,
            fast.makespan
        );
    }

    #[test]
    fn worker_count_limits_execution_bound_streams() {
        // With real exec times and few workers, workers are the
        // bottleneck; shards shouldn't change makespan much.
        let trace = ShardedStressSpec::balanced(500, 4).generate(); // 200 ns exec
        let few = simulate_sharded(
            MultiMaestroConfig {
                workers: 1,
                ..MultiMaestroConfig::with_shards(4).no_prep()
            },
            &trace,
        );
        let many = simulate_sharded(
            MultiMaestroConfig {
                workers: 16,
                ..MultiMaestroConfig::with_shards(4).no_prep()
            },
            &trace,
        );
        assert!(few.makespan > many.makespan);
        // Serial exec floor: 500 tasks x 200 ns.
        assert!(few.makespan >= SimTime::from_ns(500 * 200));
    }
}
