//! Experiment helpers: speedup curves and design-space sweeps.
//!
//! Every speedup in the paper is "measured against the single core
//! experiment" of the same configuration family (double buffering
//! enabled), so a curve is a series of simulations differing only in
//! `workers`, normalized by the 1-worker makespan.

use crate::config::MachineConfig;
use crate::machine::simulate;
use crate::report::{Report, SimError};
use nexuspp_desim::SimTime;
use nexuspp_trace::TraceSource;

/// One point of a speedup curve.
#[derive(Debug, Clone)]
pub struct SpeedupPoint {
    /// Worker-core count.
    pub workers: usize,
    /// Makespan at this count.
    pub makespan: SimTime,
    /// Speedup vs the 1-worker run of the same family.
    pub speedup: f64,
    /// Full report (utilizations, stalls, occupancies).
    pub report: Report,
}

/// Simulate the same workload at several worker counts and normalize by
/// the first run. `make_source` must return a fresh, identical source per
/// call (same seed ⇒ same trace). `configure` maps a worker count to the
/// machine configuration (use it to toggle contention, buffering, sizes).
pub fn speedup_curve(
    core_counts: &[usize],
    mut make_source: impl FnMut() -> Box<dyn TraceSource>,
    mut configure: impl FnMut(usize) -> MachineConfig,
) -> Result<Vec<SpeedupPoint>, SimError> {
    assert!(!core_counts.is_empty());
    // Baseline: single worker, same family.
    let mut base_src = make_source();
    let base_cfg = configure(1);
    assert_eq!(base_cfg.workers, 1, "configure(1) must yield one worker");
    let base = simulate(base_cfg, base_src.as_mut())?;
    let base_makespan = base.makespan;

    let mut points = Vec::with_capacity(core_counts.len());
    for &w in core_counts {
        let (makespan, report) = if w == 1 {
            (base.makespan, base.clone())
        } else {
            let mut src = make_source();
            let cfg = configure(w);
            assert_eq!(cfg.workers, w);
            let r = simulate(cfg, src.as_mut())?;
            (r.makespan, r)
        };
        points.push(SpeedupPoint {
            workers: w,
            makespan,
            speedup: base_makespan / makespan,
            report,
        });
    }
    Ok(points)
}

/// The worker counts the paper's figures sweep (1 through 256; Figure 8
/// stops at 64, Figure 6 runs at a fixed 256).
pub const PAPER_CORE_COUNTS: [usize; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];

/// Format a speedup curve as an aligned text table.
pub fn format_curve(title: &str, points: &[SpeedupPoint]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "{title}").unwrap();
    writeln!(
        out,
        "{:>8} {:>14} {:>10} {:>8}",
        "cores", "makespan", "speedup", "util"
    )
    .unwrap();
    for p in points {
        writeln!(
            out,
            "{:>8} {:>14} {:>10.2} {:>7.1}%",
            p.workers,
            p.makespan.to_string(),
            p.speedup,
            p.report.worker_utilization() * 100.0
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexuspp_desim::SimTime;
    use nexuspp_trace::{MemCost, Param, TaskRecord, Trace, VecSource};

    fn independent_trace(n: u64) -> Trace {
        let tasks = (0..n)
            .map(|i| TaskRecord {
                id: i,
                fptr: 1,
                params: vec![Param::inout(0x1000 + i * 64, 16)],
                exec: SimTime::from_us(10),
                read: MemCost::None,
                write: MemCost::None,
            })
            .collect();
        Trace::from_tasks("ind", tasks)
    }

    #[test]
    fn speedup_curve_normalizes_to_one_worker() {
        let trace = independent_trace(200);
        let points = speedup_curve(
            &[1, 2, 4],
            || Box::new(VecSource::new(trace.tasks.clone())),
            MachineConfig::with_workers,
        )
        .unwrap();
        assert_eq!(points.len(), 3);
        assert!((points[0].speedup - 1.0).abs() < 1e-9);
        assert!(
            points[1].speedup > 1.8,
            "2 workers ≈ 2×: {}",
            points[1].speedup
        );
        assert!(
            points[2].speedup > 3.4,
            "4 workers ≈ 4×: {}",
            points[2].speedup
        );
        let text = format_curve("test", &points);
        assert!(text.contains("cores"));
    }
}
