//! End-to-end tests of the threaded runtime: real closures, real data,
//! dependency semantics equal to sequential execution.

use nexuspp_desim::Rng;
use nexuspp_runtime::Runtime;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn chain_of_transformations() {
    let rt = Runtime::new(4);
    let a = rt.region(vec![1u64; 64]);
    let b = rt.region(vec![0u64; 64]);
    let c = rt.region(vec![0u64; 64]);
    {
        let (a2, b2) = (a.clone(), b.clone());
        rt.task().input(&a).output(&b).spawn(move |t| {
            let av = t.read(&a2);
            let mut bv = t.write(&b2);
            for i in 0..av.len() {
                bv[i] = av[i] * 3;
            }
        });
    }
    {
        let (b2, c2) = (b.clone(), c.clone());
        rt.task().input(&b).output(&c).spawn(move |t| {
            let bv = t.read(&b2);
            let mut cv = t.write(&c2);
            for i in 0..bv.len() {
                cv[i] = bv[i] + 1;
            }
        });
    }
    rt.barrier();
    assert_eq!(rt.with_data(&c, |v| v.to_vec()), vec![4u64; 64]);
}

#[test]
fn fan_out_fan_in_sums() {
    let rt = Runtime::new(8);
    let src = rt.region((0..1000u64).collect::<Vec<_>>());
    let partials: Vec<_> = (0..10).map(|_| rt.region(vec![0u64])).collect();
    let total = rt.region(vec![0u64]);
    for (k, p) in partials.iter().enumerate() {
        let (src2, p2) = (src.clone(), p.clone());
        rt.task().input(&src).output(p).spawn(move |t| {
            let s = t.read(&src2);
            let mut out = t.write(&p2);
            out[0] = s[k * 100..(k + 1) * 100].iter().sum();
        });
    }
    {
        let mut b = rt.task().output(&total);
        for p in &partials {
            b = b.input(p);
        }
        let (ps, tot): (Vec<_>, _) = (partials.clone(), total.clone());
        b.spawn(move |t| {
            let mut sum = 0;
            for p in &ps {
                sum += t.read(p)[0];
            }
            t.write(&tot)[0] = sum;
        });
    }
    rt.barrier();
    assert_eq!(rt.with_data(&total, |v| v[0]), (0..1000u64).sum());
}

#[test]
fn waw_and_war_order_preserved() {
    // Writers and readers interleaved on one region: the final value must
    // be the last writer's, and each reader must observe its program-order
    // predecessor's value.
    let rt = Runtime::new(8);
    let x = rt.region(vec![0u64]);
    let seen = Arc::new(AtomicU64::new(0));
    for round in 1..=20u64 {
        let x2 = x.clone();
        rt.task().inout(&x).spawn(move |t| {
            t.write(&x2)[0] = round;
        });
        for _ in 0..3 {
            let (x2, seen2) = (x.clone(), Arc::clone(&seen));
            rt.task().input(&x).spawn(move |t| {
                let v = t.read(&x2)[0];
                assert_eq!(v, round, "reader observed the wrong round");
                seen2.fetch_add(1, Ordering::Relaxed);
            });
        }
    }
    rt.barrier();
    assert_eq!(rt.with_data(&x, |v| v[0]), 20);
    assert_eq!(seen.load(Ordering::Relaxed), 60);
}

#[test]
fn wavefront_stencil_matches_sequential() {
    // The H.264-style wavefront from Listing 1 computed for real: each
    // cell = left + upright + 1, with one region per cell.
    const ROWS: usize = 12;
    const COLS: usize = 10;
    let rt = Runtime::new(6);
    let grid: Vec<Vec<_>> = (0..ROWS)
        .map(|_| (0..COLS).map(|_| rt.region(vec![0i64])).collect())
        .collect();
    for i in 0..ROWS {
        for j in 0..COLS {
            let mut b = rt.task().inout(&grid[i][j]);
            let left = (j > 0).then(|| grid[i][j - 1].clone());
            let upright = (i > 0 && j + 1 < COLS).then(|| grid[i - 1][j + 1].clone());
            if let Some(l) = &left {
                b = b.input(l);
            }
            if let Some(u) = &upright {
                b = b.input(u);
            }
            let me = grid[i][j].clone();
            b.spawn(move |t| {
                let lv = left.as_ref().map(|l| t.read(l)[0]).unwrap_or(0);
                let uv = upright.as_ref().map(|u| t.read(u)[0]).unwrap_or(0);
                t.write(&me)[0] = lv + uv + 1;
            });
        }
    }
    rt.barrier();
    // Sequential reference.
    let mut reference = vec![vec![0i64; COLS]; ROWS];
    for i in 0..ROWS {
        for j in 0..COLS {
            let l = if j > 0 { reference[i][j - 1] } else { 0 };
            let u = if i > 0 && j + 1 < COLS {
                reference[i - 1][j + 1]
            } else {
                0
            };
            reference[i][j] = l + u + 1;
        }
    }
    for i in 0..ROWS {
        for j in 0..COLS {
            assert_eq!(
                rt.with_data(&grid[i][j], |v| v[0]),
                reference[i][j],
                "cell ({i},{j})"
            );
        }
    }
}

#[test]
fn random_program_equals_sequential_execution() {
    // Random reads/writes over a few regions: dataflow semantics must
    // reproduce exactly the sequential (submission-order) result.
    let mut rng = Rng::new(777);
    const REGIONS: usize = 6;
    const TASKS: usize = 400;

    // Script the program first so both executions agree.
    // op = (targets(write), sources(read), multiplier)
    let mut script = Vec::new();
    for _ in 0..TASKS {
        let dst = rng.gen_range(REGIONS as u64) as usize;
        let src = rng.gen_range(REGIONS as u64) as usize;
        let mul = 1 + rng.gen_range(5);
        script.push((dst, src, mul));
    }

    // Sequential reference.
    let mut reference = [1u64; REGIONS];
    for &(dst, src, mul) in &script {
        reference[dst] = reference[src].wrapping_mul(mul).wrapping_add(1);
    }

    // Parallel execution.
    let rt = Runtime::new(8);
    let regions: Vec<_> = (0..REGIONS).map(|_| rt.region(vec![1u64])).collect();
    for &(dst, src, mul) in &script {
        let d = regions[dst].clone();
        let s = regions[src].clone();
        if dst == src {
            rt.task().inout(&regions[dst]).spawn(move |t| {
                let v = t.read(&s)[0];
                t.write(&d)[0] = v.wrapping_mul(mul).wrapping_add(1);
            });
        } else {
            rt.task()
                .input(&regions[src])
                .output(&regions[dst])
                .spawn(move |t| {
                    let v = t.read(&s)[0];
                    t.write(&d)[0] = v.wrapping_mul(mul).wrapping_add(1);
                });
        }
    }
    rt.barrier();
    for (k, r) in regions.iter().enumerate() {
        assert_eq!(rt.with_data(r, |v| v[0]), reference[k], "region {k}");
    }
}

#[test]
fn tasks_can_spawn_tasks() {
    let rt = Arc::new(Runtime::new(4));
    let out = rt.region(vec![0u64]);
    {
        let (rt2, out2) = (Arc::clone(&rt), out.clone());
        rt.task().spawn(move |_| {
            let inner_out = out2.clone();
            rt2.task().inout(&out2).spawn(move |t| {
                t.write(&inner_out)[0] = 42;
            });
        });
    }
    // Wait for the outer task, then the inner one.
    rt.barrier();
    rt.barrier();
    assert_eq!(rt.with_data(&out, |v| v[0]), 42);
}

#[test]
fn barrier_on_idle_runtime_returns() {
    let rt = Runtime::new(2);
    rt.barrier();
    rt.barrier();
    assert_eq!(rt.submitted(), 0);
}

#[test]
fn drop_joins_workers_cleanly() {
    for _ in 0..5 {
        let rt = Runtime::new(3);
        let r = rt.region(vec![0u64]);
        for i in 0..50u64 {
            let r2 = r.clone();
            rt.task().inout(&r).spawn(move |t| {
                t.write(&r2)[0] += i;
            });
        }
        drop(rt); // implicit barrier + join
    }
}

#[test]
#[should_panic(expected = "undeclared access")]
fn undeclared_access_is_caught() {
    let rt = Runtime::new(1);
    let a = rt.region(vec![0u64]);
    let b = rt.region(vec![0u64]);
    let (_a2, b2) = (a.clone(), b.clone());
    rt.task().input(&a).spawn(move |t| {
        // b was never declared: must panic (and poison the test thread).
        let _ = t.read(&b2);
    });
    rt.barrier();
}

#[test]
fn wait_on_observes_produced_value() {
    let rt = Runtime::new(4);
    let x = rt.region(vec![0u64]);
    for round in 1..=5u64 {
        let x2 = x.clone();
        rt.task().inout(&x).spawn(move |t| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            t.write(&x2)[0] = round;
        });
        // `wait on` the region: must see exactly this round's value even
        // though later rounds will be submitted afterwards.
        rt.wait_on(&x);
        assert_eq!(rt.with_data(&x, |v| v[0]), round);
    }
    rt.barrier();
}

#[test]
fn high_priority_overtakes_queued_tasks() {
    use std::sync::Mutex;
    let rt = Runtime::new(1); // single worker → strict queue ordering
    let order = Arc::new(Mutex::new(Vec::new()));
    let gate = rt.region(vec![0u8]);
    {
        // Occupy the worker so later submissions pile up in the queue.
        let g = gate.clone();
        rt.task().inout(&gate).spawn(move |t| {
            let _w = t.write(&g);
            std::thread::sleep(std::time::Duration::from_millis(20));
        });
    }
    for k in 0..4u64 {
        let order2 = Arc::clone(&order);
        rt.task().spawn(move |_| {
            order2.lock().unwrap().push(format!("normal-{k}"));
        });
    }
    {
        let order2 = Arc::clone(&order);
        rt.task().high_priority().spawn(move |_| {
            order2.lock().unwrap().push("HIGH".to_string());
        });
    }
    rt.barrier();
    let order = order.lock().unwrap();
    assert_eq!(order.len(), 5);
    assert_eq!(
        order[0], "HIGH",
        "the high-priority task must run before queued normals: {order:?}"
    );
}

#[test]
fn wait_on_does_not_wait_for_readers() {
    // `wait on` blocks on producers, not on slow concurrent readers.
    let rt = Runtime::new(4);
    let x = rt.region(vec![7u64]);
    let started = Arc::new(AtomicU64::new(0));
    {
        let (x2, s2) = (x.clone(), Arc::clone(&started));
        rt.task().input(&x).spawn(move |t| {
            s2.fetch_add(1, Ordering::SeqCst);
            let _v = t.read(&x2)[0];
            std::thread::sleep(std::time::Duration::from_millis(30));
        });
    }
    let t0 = std::time::Instant::now();
    rt.wait_on(&x); // no outstanding writer → returns quickly
    assert!(
        t0.elapsed() < std::time::Duration::from_millis(25),
        "wait_on must not block on the slow reader"
    );
    rt.barrier();
}
