//! Events ≡ counters: the lifecycle event stream and the runtime's
//! atomic counters are two independent records of the same execution;
//! at quiescence they must agree exactly.
//!
//! Covered matrix: both backends ([`Runtime`] and [`ShardedRuntime`]),
//! {1, 2, 4, 8} workers, and (sharded) both wake modes. Each run also
//! checks the strict per-task lifecycle ordering the recorder's global
//! sequence promises: `Submitted < DepCheckStart < DepCheckDone < Ready
//! < ExecStart < ExecDone < Finished` on `seq`.

use nexuspp_core::ShardCapacity;
use nexuspp_obs::{Event, EventKind, Recorder, NO_TASK};
use nexuspp_runtime::{Runtime, ShardedRuntime};
use nexuspp_sched::SchedulerKind;
use nexuspp_shard::WakeMode;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CHAINS: usize = 8;
const DEPTH: usize = 24;
const INDEPENDENT: usize = 32;

fn task_count() -> u64 {
    (CHAINS * DEPTH + INDEPENDENT) as u64
}

fn count(events: &[Event], kind: EventKind) -> u64 {
    events.iter().filter(|e| e.kind == kind).count() as u64
}

/// Strict per-task lifecycle ordering on the global sequence.
fn check_per_task_order(events: &[Event]) {
    let mut per_task: BTreeMap<u64, Vec<(EventKind, u64)>> = BTreeMap::new();
    for e in events {
        if e.task != NO_TASK {
            per_task.entry(e.task).or_default().push((e.kind, e.seq));
        }
    }
    let chain = [
        EventKind::Submitted,
        EventKind::DepCheckStart,
        EventKind::DepCheckDone,
        EventKind::Ready,
        EventKind::ExecStart,
        EventKind::ExecDone,
        EventKind::Finished,
    ];
    assert_eq!(per_task.len() as u64, task_count());
    for (task, evs) in per_task {
        let mut last = None;
        for k in chain {
            let seq = evs
                .iter()
                .find(|(ek, _)| *ek == k)
                .map(|(_, s)| *s)
                .unwrap_or_else(|| panic!("task {task} missing {}", k.name()));
            if let Some(prev) = last {
                assert!(
                    prev < seq,
                    "task {task}: {} out of order (seq {prev} !< {seq})",
                    k.name()
                );
            }
            last = Some(seq);
        }
    }
}

/// Drain until the scheduler's `parks` counter and the stream's
/// scheduler-idle `Stalled` events agree (workers may still be settling
/// into their final park when the barrier returns).
fn drain_until_parks_settle(
    rec: &Recorder,
    parks: impl Fn() -> u64,
    mut events: Vec<Event>,
) -> Vec<Event> {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        events.extend(rec.drain());
        let stalled = events
            .iter()
            .filter(|e| e.kind == EventKind::Stalled && e.task == NO_TASK)
            .count() as u64;
        let p = parks();
        if stalled == p {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "parks ({p}) and scheduler Stalled events ({stalled}) never converged"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    events.sort_by_key(|e| e.seq);
    events
}

/// Common invariants shared by both backends. `scheduler_submitted` is
/// the scheduler's own spawn-side counter; it must equal the number of
/// tasks whose `Ready` event carries no waker (ready at submission).
fn check_common(events: &[Event], steals: u64, scheduler_submitted: u64) {
    let n = task_count();
    for k in [
        EventKind::Submitted,
        EventKind::DepCheckStart,
        EventKind::DepCheckDone,
        EventKind::Ready,
        EventKind::ExecStart,
        EventKind::ExecDone,
        EventKind::Finished,
    ] {
        assert_eq!(count(events, k), n, "{} count", k.name());
    }
    let ready_at_submit = events
        .iter()
        .filter(|e| e.kind == EventKind::Ready && e.aux == NO_TASK)
        .count() as u64;
    let woken = events
        .iter()
        .filter(|e| e.kind == EventKind::Ready && e.aux != NO_TASK)
        .count() as u64;
    assert_eq!(ready_at_submit + woken, n);
    assert_eq!(
        ready_at_submit, scheduler_submitted,
        "tasks ready at submission == scheduler spawn-side submissions"
    );
    // Every chain head and every independent task is ready at
    // submission; a chain task whose predecessor already retired before
    // it was submitted legitimately joins them, so this is a floor, not
    // an exact count.
    assert!(ready_at_submit >= (CHAINS + INDEPENDENT) as u64);
    assert_eq!(count(events, EventKind::Stolen), steals, "steals");
    check_per_task_order(events);
}

fn run_sharded(workers: usize, wake_mode: WakeMode) {
    let rec = Arc::new(Recorder::new(workers));
    let rt = ShardedRuntime::with_recorder(
        workers,
        4,
        SchedulerKind::WorkStealing,
        ShardCapacity::Unbounded,
        wake_mode,
        Arc::clone(&rec),
    );
    let executed = Arc::new(AtomicU64::new(0));
    let chains: Vec<_> = (0..CHAINS).map(|_| rt.region(vec![0u64])).collect();
    for _ in 0..DEPTH {
        for r in &chains {
            let executed = Arc::clone(&executed);
            rt.task().inout(r).spawn(move |_| {
                executed.fetch_add(1, Ordering::Relaxed);
            });
        }
    }
    for _ in 0..INDEPENDENT {
        let r = rt.region(vec![0u64]);
        let executed = Arc::clone(&executed);
        rt.task().output(&r).spawn(move |_| {
            executed.fetch_add(1, Ordering::Relaxed);
        });
    }
    rt.barrier();
    assert_eq!(executed.load(Ordering::Relaxed), task_count());

    let events = drain_until_parks_settle(&rec, || rt.sched_counts().parks, Vec::new());
    assert_eq!(rec.dropped(), 0, "event rings must not overflow");

    let sched = rt.sched_counts();
    let wake = rt.wake_counts();
    check_common(&events, sched.steals, sched.submitted);
    // Wake-path equivalence: every wake record the dispatcher delivered
    // appears as one WakePosted and one WakeDelivered event.
    assert_eq!(count(&events, EventKind::WakePosted), wake.delivered);
    assert_eq!(count(&events, EventKind::WakeDelivered), wake.delivered);
    // The registry sees the same totals through its snapshot surface.
    let snap = rt.metrics().snapshot();
    assert_eq!(snap.get("tasks", "submitted"), Some(task_count()));
    assert_eq!(snap.get("wake", "delivered"), Some(wake.delivered));
    assert_eq!(snap.get("events", "recorded"), Some(rec.recorded()));
    drop(rt);
}

fn run_single(workers: usize) {
    let rec = Arc::new(Recorder::new(workers));
    let rt = Runtime::with_recorder(workers, SchedulerKind::WorkStealing, Arc::clone(&rec));
    let executed = Arc::new(AtomicU64::new(0));
    let chains: Vec<_> = (0..CHAINS).map(|_| rt.region(vec![0u64])).collect();
    for _ in 0..DEPTH {
        for r in &chains {
            let executed = Arc::clone(&executed);
            rt.task().inout(r).spawn(move |_| {
                executed.fetch_add(1, Ordering::Relaxed);
            });
        }
    }
    for _ in 0..INDEPENDENT {
        let r = rt.region(vec![0u64]);
        let executed = Arc::clone(&executed);
        rt.task().output(&r).spawn(move |_| {
            executed.fetch_add(1, Ordering::Relaxed);
        });
    }
    rt.barrier();
    assert_eq!(executed.load(Ordering::Relaxed), task_count());

    let events = drain_until_parks_settle(&rec, || rt.sched_counts().parks, Vec::new());
    assert_eq!(rec.dropped(), 0, "event rings must not overflow");

    let sched = rt.sched_counts();
    check_common(&events, sched.steals, sched.submitted);
    // Single-engine wake path: one WakePosted + WakeDelivered per task
    // that parked at submission (i.e. whose Ready names a waker).
    let woken = events
        .iter()
        .filter(|e| e.kind == EventKind::Ready && e.aux != NO_TASK)
        .count() as u64;
    assert_eq!(count(&events, EventKind::WakePosted), woken);
    assert_eq!(count(&events, EventKind::WakeDelivered), woken);
    let snap = rt.metrics().snapshot();
    assert_eq!(snap.get("tasks", "submitted"), Some(task_count()));
    assert_eq!(snap.get("events", "recorded"), Some(rec.recorded()));
    drop(rt);
}

#[test]
fn sharded_lock_free_events_match_counters() {
    for workers in [1, 2, 4, 8] {
        run_sharded(workers, WakeMode::LockFree);
    }
}

#[test]
fn sharded_locked_events_match_counters() {
    for workers in [1, 2, 4, 8] {
        run_sharded(workers, WakeMode::Locked);
    }
}

#[test]
fn single_engine_events_match_counters() {
    for workers in [1, 2, 4, 8] {
        run_single(workers);
    }
}
