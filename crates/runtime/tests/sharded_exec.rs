//! End-to-end execution tests for the sharded runtime: real closures on
//! real threads, dependency resolution partitioned over per-shard locks.
//! Dataflow results must be schedule-independent, so every test asserts
//! exact values no matter how shards interleave.

use nexuspp_runtime::{Runtime, ShardedRuntime};

#[test]
fn two_stage_pipeline_produces_exact_result() {
    for shards in [1, 2, 4, 8] {
        let rt = ShardedRuntime::new(4, shards);
        let src = rt.region(vec![1u64; 64]);
        let mid = rt.region(vec![0u64; 64]);
        let sum = rt.region(vec![0u64]);
        {
            let (src, mid) = (src.clone(), mid.clone());
            rt.task().input(&src).output(&mid).spawn(move |t| {
                let s = t.read(&src);
                let mut m = t.write(&mid);
                for (out, inp) in m.iter_mut().zip(s.iter()) {
                    *out = inp * 3;
                }
            });
        }
        {
            let (mid, sum) = (mid.clone(), sum.clone());
            rt.task().input(&mid).output(&sum).spawn(move |t| {
                t.write(&sum)[0] = t.read(&mid).iter().sum();
            });
        }
        rt.barrier();
        assert_eq!(rt.with_data(&sum, |v| v[0]), 3 * 64, "shards={shards}");
    }
}

#[test]
fn long_chain_serializes_increments() {
    let rt = ShardedRuntime::new(4, 4);
    let cell = rt.region(vec![0u64]);
    for _ in 0..200 {
        let cell = cell.clone();
        rt.task().inout(&cell).spawn(move |t| {
            t.write(&cell)[0] += 1;
        });
    }
    rt.barrier();
    assert_eq!(rt.with_data(&cell, |v| v[0]), 200);
}

#[test]
fn wide_fanout_joins_exactly_once() {
    let rt = ShardedRuntime::new(4, 4);
    let seed = rt.region(vec![7u64]);
    let outs: Vec<_> = (0..32).map(|_| rt.region(vec![0u64])).collect();
    let total = rt.region(vec![0u64]);
    {
        let seed = seed.clone();
        rt.task().output(&seed).spawn(move |t| {
            t.write(&seed)[0] = 5;
        });
    }
    for out in &outs {
        let (seed, out) = (seed.clone(), out.clone());
        rt.task().input(&seed).output(&out).spawn(move |t| {
            t.write(&out)[0] = t.read(&seed)[0] * 2;
        });
    }
    {
        let total = total.clone();
        let mut b = rt.task();
        for out in &outs {
            b = b.input(out);
        }
        let outs = outs.clone();
        b.output(&total).spawn(move |t| {
            t.write(&total)[0] = outs.iter().map(|o| t.read(o)[0]).sum();
        });
    }
    rt.barrier();
    assert_eq!(rt.with_data(&total, |v| v[0]), 32 * 10);
}

#[test]
fn many_independent_tasks_all_complete() {
    let rt = ShardedRuntime::new(4, 4);
    let regions: Vec<_> = (0..256).map(|i| rt.region(vec![i as u64])).collect();
    for r in &regions {
        let r = r.clone();
        rt.task().inout(&r).spawn(move |t| {
            t.write(&r)[0] += 1000;
        });
    }
    rt.barrier();
    for (i, r) in regions.iter().enumerate() {
        assert_eq!(rt.with_data(r, |v| v[0]), i as u64 + 1000);
    }
    assert_eq!(rt.submitted(), 256);
}

#[test]
fn wait_on_blocks_for_outstanding_writers() {
    let rt = ShardedRuntime::new(2, 4);
    let slow = rt.region(vec![0u64]);
    {
        let slow = slow.clone();
        rt.task().output(&slow).spawn(move |t| {
            std::thread::sleep(std::time::Duration::from_millis(20));
            t.write(&slow)[0] = 99;
        });
    }
    rt.wait_on(&slow);
    assert_eq!(rt.with_data(&slow, |v| v[0]), 99);
    rt.barrier();
}

/// A wavefront-style stencil over a strip of cells: cell `i` at step `s`
/// reads cells `i-1` and `i` from the previous step. Dataflow semantics
/// make the result schedule-independent, so the single-engine runtime and
/// the sharded runtime must produce identical strips.
fn stencil_single() -> Vec<u64> {
    let rt = Runtime::new(3);
    let cells: Vec<_> = (0..12).map(|i| rt.region(vec![i as u64])).collect();
    for _step in 0..6 {
        for i in 1..cells.len() {
            let (left, cur) = (cells[i - 1].clone(), cells[i].clone());
            rt.task().input(&left).inout(&cur).spawn(move |t| {
                let l = t.read(&left)[0];
                t.write(&cur)[0] += l;
            });
        }
    }
    rt.barrier();
    cells.iter().map(|c| rt.with_data(c, |v| v[0])).collect()
}

fn stencil_sharded(shards: usize) -> Vec<u64> {
    let rt = ShardedRuntime::new(3, shards);
    let cells: Vec<_> = (0..12).map(|i| rt.region(vec![i as u64])).collect();
    for _step in 0..6 {
        for i in 1..cells.len() {
            let (left, cur) = (cells[i - 1].clone(), cells[i].clone());
            rt.task().input(&left).inout(&cur).spawn(move |t| {
                let l = t.read(&left)[0];
                t.write(&cur)[0] += l;
            });
        }
    }
    rt.barrier();
    cells.iter().map(|c| rt.with_data(c, |v| v[0])).collect()
}

#[test]
fn matches_single_engine_runtime_results() {
    let reference = stencil_single();
    for shards in [1, 2, 4, 8] {
        assert_eq!(stencil_sharded(shards), reference, "shards={shards}");
    }
}

#[test]
fn panic_in_task_is_reraised_at_barrier() {
    let rt = ShardedRuntime::new(2, 2);
    let r = rt.region(vec![0u64]);
    {
        let r = r.clone();
        rt.task().output(&r).spawn(move |_t| {
            panic!("sharded task boom");
        });
    }
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| rt.barrier()));
    assert!(err.is_err(), "barrier must re-raise the task panic");
}

#[test]
fn high_priority_probe_overtakes_backlog() {
    // Functional smoke: a high-priority probe on an idle region returns
    // promptly even with a backlog of queued normal tasks.
    let rt = ShardedRuntime::new(1, 4);
    let busy = rt.region(vec![0u64]);
    let idle = rt.region(vec![42u64]);
    for _ in 0..20 {
        let busy = busy.clone();
        rt.task().inout(&busy).spawn(move |t| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            t.write(&busy)[0] += 1;
        });
    }
    rt.wait_on(&idle); // must not wait for the 20ms backlog chain
    rt.barrier();
    assert_eq!(rt.with_data(&busy, |v| v[0]), 20);
}
