//! End-to-end wake-mode tests for the sharded runtime: the lock-free
//! wake lists and the locked kick-off baseline must compute identical
//! dataflow results under real workers, and the lock-free mode must keep
//! its structural promise (zero shard-lock acquisitions on the wake
//! delivery path) all the way up through the runtime.

use nexuspp_runtime::{SchedulerKind, ShardCapacity, ShardedRuntime, WakeMode};

fn wake_fan_in(rt: &ShardedRuntime, producers: u32, consumers_per: u32) -> u64 {
    // Each producer seeds a cell; its consumers add into a shared
    // accumulator region of their own; a final sum reduces everything.
    let cells: Vec<_> = (0..producers).map(|_| rt.region(vec![0u64])).collect();
    let acc = rt.region(vec![0u64; producers as usize]);
    for (p, cell) in cells.iter().enumerate() {
        {
            let cell = cell.clone();
            rt.task().output(&cell).spawn(move |t| {
                t.write(&cell)[0] = (p as u64) + 1;
            });
        }
        for _ in 0..consumers_per {
            let cell = cell.clone();
            let acc = acc.clone();
            rt.task().input(&cell).inout(&acc).spawn(move |t| {
                let v = t.read(&cell)[0];
                t.write(&acc)[p] += v;
            });
        }
    }
    rt.barrier();
    rt.with_data(&acc, |v| v.iter().sum())
}

/// Closed form of [`wake_fan_in`]'s result.
fn expected(producers: u32, consumers_per: u32) -> u64 {
    (1..=producers as u64)
        .map(|p| p * consumers_per as u64)
        .sum()
}

#[test]
fn wake_modes_compute_identical_results() {
    for mode in [WakeMode::Locked, WakeMode::LockFree] {
        for workers in [1usize, 4] {
            let rt = ShardedRuntime::with_options(
                workers,
                4,
                SchedulerKind::default(),
                ShardCapacity::Unbounded,
                mode,
            );
            assert_eq!(rt.wake_mode(), mode);
            let got = wake_fan_in(&rt, 8, 16);
            assert_eq!(
                got,
                expected(8, 16),
                "{} workers={workers}: fan-in result diverged",
                mode.name()
            );
            let counts = rt.wake_counts();
            assert!(
                counts.delivered >= 8,
                "{}: at least one wake per producer burst must flow \
                 through the dispatcher (got {})",
                mode.name(),
                counts.delivered
            );
        }
    }
}

#[test]
fn lock_free_wake_path_never_touches_a_shard_lock() {
    let rt = ShardedRuntime::new(4, 4);
    assert_eq!(rt.wake_mode(), WakeMode::LockFree);
    let got = wake_fan_in(&rt, 16, 8);
    assert_eq!(got, expected(16, 8));
    let counts = rt.wake_counts();
    assert_eq!(
        counts.delivery_lock_acquisitions, 0,
        "the default wake path must deliver without shard-lock acquisitions"
    );
    assert!(counts.delivered > 0 && counts.deliveries > 0);
}

#[test]
fn bounded_capacity_and_lock_free_wakes_compose() {
    // Capacity-1 shards force the stall/retry handshake while the wake
    // path runs lock-free: both features' counters must come out clean.
    for mode in [WakeMode::Locked, WakeMode::LockFree] {
        let rt = ShardedRuntime::with_options(
            4,
            2,
            SchedulerKind::default(),
            ShardCapacity::Bounded(1),
            mode,
        );
        let got = wake_fan_in(&rt, 6, 6);
        assert_eq!(got, expected(6, 6), "{}", mode.name());
        for (s, c) in rt.capacity_counts().iter().enumerate() {
            assert_eq!(
                c.stalls_observed,
                c.retries_resolved,
                "{} shard {s}: unresolved stall episodes",
                mode.name()
            );
            assert_eq!(c.resident, 0, "shard {s} leaked residency slots");
        }
    }
}
