//! Differential tests between the two ready-task schedulers at the
//! runtime level: the work-stealing scheduler must execute exactly the
//! same task set as the mutex queue — no lost execution, no duplicated
//! execution, no dependency-order violation — across thread counts
//! {1, 2, 4, 8}, on both execution backends.
//!
//! Execution logs are gathered by the tasks themselves: every task
//! appends its global id to a shared log and checks, inside its body,
//! that the region it consumes holds exactly the value its dependency
//! predecessor must have produced (a dependency-order violation is
//! caught at the task that observes it, not inferred from final state).

use nexuspp_runtime::{Runtime, SchedulerKind, ShardedRuntime};
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const KINDS: [SchedulerKind; 2] = [SchedulerKind::MutexQueue, SchedulerKind::WorkStealing];
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Outcome of one chain-workload run: the execution log (global task
/// ids, in observed completion order) plus the final chain values.
struct RunLog {
    log: Vec<u64>,
    finals: Vec<u64>,
}

/// Tiny backend abstraction so the same workload — `chains` ×
/// `chain_len` inout-serialized chains plus a fan-out root, the
/// steal-stress shape on real regions — runs on both runtimes without
/// duplicating the driver. Task (c, i) asserts its chain cell holds `i`
/// before writing `i + 1`, so any dependency-order violation panics
/// inside the violating task and surfaces at the barrier.
trait ChainBackend {
    fn run(&self, chains: u64, chain_len: u64) -> RunLog;
}

macro_rules! impl_chain_backend {
    ($ty:ty) => {
        impl ChainBackend for $ty {
            fn run(&self, chains: u64, chain_len: u64) -> RunLog {
                let rt = self;
                let log = Arc::new(Mutex::new(Vec::new()));
                let root = rt.region(vec![0u64]);
                let cells: Vec<_> = (0..chains).map(|_| rt.region(vec![0u64])).collect();
                {
                    let (root, log) = (root.clone(), Arc::clone(&log));
                    rt.task().output(&root).spawn(move |t| {
                        t.write(&root)[0] = 7;
                        log.lock().unwrap().push(0);
                    });
                }
                for (c, cell) in cells.iter().enumerate() {
                    for i in 0..chain_len {
                        let id = 1 + c as u64 * chain_len + i;
                        let (cell, log) = (cell.clone(), Arc::clone(&log));
                        if i == 0 {
                            let (root, cell2) = (root.clone(), cell.clone());
                            rt.task().input(&root).inout(&cell).spawn(move |t| {
                                assert_eq!(t.read(&root)[0], 7, "head ran before root");
                                let mut v = t.write(&cell2);
                                assert_eq!(v[0], 0, "chain head must run first");
                                v[0] = 1;
                                log.lock().unwrap().push(id);
                            });
                        } else {
                            let cell2 = cell.clone();
                            rt.task().inout(&cell).spawn(move |t| {
                                let mut v = t.write(&cell2);
                                assert_eq!(v[0], i, "dependency order violated in chain");
                                v[0] = i + 1;
                                log.lock().unwrap().push(id);
                            });
                        }
                    }
                }
                rt.barrier();
                let finals = cells.iter().map(|c| rt.with_data(c, |v| v[0])).collect();
                let log = Arc::try_unwrap(log).unwrap().into_inner().unwrap();
                RunLog { log, finals }
            }
        }
    };
}

impl_chain_backend!(Runtime);
impl_chain_backend!(ShardedRuntime);

fn check_run(log: RunLog, chains: u64, chain_len: u64, what: &str) -> HashSet<u64> {
    let total = 1 + chains * chain_len;
    assert_eq!(log.log.len() as u64, total, "{what}: wrong execution count");
    let set: HashSet<u64> = log.log.iter().copied().collect();
    assert_eq!(set.len() as u64, total, "{what}: duplicated execution");
    assert_eq!(
        log.finals,
        vec![chain_len; chains as usize],
        "{what}: lost or misordered chain task"
    );
    set
}

#[test]
fn schedulers_execute_identical_task_sets_on_single_engine_runtime() {
    const CHAINS: u64 = 6;
    const LEN: u64 = 60;
    for workers in THREADS {
        let mut sets = Vec::new();
        for kind in KINDS {
            let rt = Runtime::with_scheduler(workers, kind);
            assert_eq!(rt.scheduler_kind(), kind);
            let run = rt.run(CHAINS, LEN);
            sets.push(check_run(
                run,
                CHAINS,
                LEN,
                &format!("runtime/{}/{workers}w", kind.name()),
            ));
        }
        assert_eq!(
            sets[0], sets[1],
            "{workers} workers: kinds executed different task sets"
        );
    }
}

#[test]
fn schedulers_execute_identical_task_sets_on_sharded_runtime() {
    const CHAINS: u64 = 6;
    const LEN: u64 = 60;
    for workers in THREADS {
        let mut sets = Vec::new();
        for kind in KINDS {
            let rt = ShardedRuntime::with_scheduler(workers, 4, kind);
            let run = rt.run(CHAINS, LEN);
            sets.push(check_run(
                run,
                CHAINS,
                LEN,
                &format!("sharded/{}/{workers}w", kind.name()),
            ));
        }
        assert_eq!(
            sets[0], sets[1],
            "{workers} workers: kinds executed different task sets"
        );
    }
}

/// Random DAGs, differentially: the same seeded random task graph runs
/// under both schedulers on both backends; dataflow semantics make
/// results schedule-independent, so every run must produce identical
/// region contents — and every task must run exactly once.
#[derive(Debug, Clone)]
struct RandomOp {
    dst: usize,
    src: usize,
    add: u64,
    high: bool,
}

fn random_ops(regions: usize) -> impl Strategy<Value = Vec<RandomOp>> {
    proptest::collection::vec(
        (0..regions, 0..regions, 1u64..100, proptest::bool::ANY).prop_map(
            |(dst, src, add, high)| RandomOp {
                dst,
                src,
                add,
                high,
            },
        ),
        1..40,
    )
}

fn run_random(ops: &[RandomOp], kind: SchedulerKind, workers: usize, regions: usize) -> Vec<u64> {
    let rt = Runtime::with_scheduler(workers, kind);
    let regs: Vec<_> = (0..regions).map(|i| rt.region(vec![i as u64])).collect();
    let ran = Arc::new(AtomicU64::new(0));
    for op in ops {
        let (dst, src) = (regs[op.dst].clone(), regs[op.src].clone());
        let add = op.add;
        let ran = Arc::clone(&ran);
        let mut b = rt.task().inout(&regs[op.dst]);
        if op.src != op.dst {
            b = b.input(&regs[op.src]);
        }
        if op.high {
            b = b.high_priority();
        }
        b.spawn(move |t| {
            let s = if src.id() == dst.id() {
                0
            } else {
                t.read(&src)[0]
            };
            let mut d = t.write(&dst);
            d[0] = d[0].wrapping_mul(3).wrapping_add(s + add);
            ran.fetch_add(1, Ordering::SeqCst);
        });
    }
    rt.barrier();
    assert_eq!(ran.load(Ordering::SeqCst) as usize, ops.len());
    regs.iter().map(|r| rt.with_data(r, |v| v[0])).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_dags_agree_across_schedulers(ops in random_ops(5)) {
        let reference = run_random(&ops, SchedulerKind::MutexQueue, 1, 5);
        for kind in KINDS {
            for workers in [2usize, 4] {
                let got = run_random(&ops, kind, workers, 5);
                prop_assert_eq!(
                    &got,
                    &reference,
                    "{} @ {} workers diverged from serial reference",
                    kind.name(),
                    workers
                );
            }
        }
    }
}

#[test]
fn steal_stress_chains_record_steals_and_shut_down_cleanly() {
    // The imbalanced shape at 4 workers on the sharded backend: the
    // worker that retires the root wakes every chain head onto its own
    // deque, so other workers can only contribute by stealing. Task
    // bodies busy-spin long enough that the run spans many OS quanta
    // (required for sibling workers to be scheduled at all on a
    // single-CPU host). Retried because steal timing is inherently OS
    // dependent.
    let spin = std::time::Duration::from_micros(5);
    let mut counts = None;
    for _attempt in 0..3 {
        let rt = ShardedRuntime::with_scheduler(4, 4, SchedulerKind::WorkStealing);
        let root = rt.region(vec![0u64]);
        let cells: Vec<_> = (0..8).map(|_| rt.region(vec![0u64])).collect();
        {
            let root = root.clone();
            rt.task().output(&root).spawn(move |t| {
                t.write(&root)[0] = 1;
            });
        }
        for cell in &cells {
            for i in 0..400u64 {
                let cell2 = cell.clone();
                if i == 0 {
                    let root = root.clone();
                    rt.task().input(&root).inout(cell).spawn(move |t| {
                        let t0 = std::time::Instant::now();
                        while t0.elapsed() < spin {
                            std::hint::spin_loop();
                        }
                        t.write(&cell2)[0] += 1;
                    });
                } else {
                    rt.task().inout(cell).spawn(move |t| {
                        let t0 = std::time::Instant::now();
                        while t0.elapsed() < spin {
                            std::hint::spin_loop();
                        }
                        t.write(&cell2)[0] += 1;
                    });
                }
            }
        }
        rt.barrier();
        for cell in &cells {
            assert_eq!(rt.with_data(cell, |v| v[0]), 400);
        }
        let c = rt.sched_counts();
        drop(rt); // clean shutdown: every worker joins
        if c.steals > 0 {
            return;
        }
        counts = Some(c);
    }
    panic!("work-stealing runtime never stole under imbalance: {counts:?}");
}

#[test]
fn parked_workers_wake_for_late_work_and_shut_down() {
    for kind in KINDS {
        let rt = Runtime::with_scheduler(8, kind);
        let r = rt.region(vec![0u64]);
        {
            let r = r.clone();
            rt.task().inout(&r).spawn(move |t| {
                t.write(&r)[0] += 1;
            });
        }
        rt.barrier();
        // All eight workers idle (the work-stealing ones park). Late
        // work must still be picked up.
        std::thread::sleep(std::time::Duration::from_millis(30));
        {
            let r = r.clone();
            rt.task().inout(&r).spawn(move |t| {
                t.write(&r)[0] += 1;
            });
        }
        rt.barrier();
        assert_eq!(rt.with_data(&r, |v| v[0]), 2);
        if kind == SchedulerKind::WorkStealing {
            assert!(
                rt.sched_counts().parks > 0,
                "idle work-stealing workers should park"
            );
        }
        drop(rt); // must join parked workers cleanly
    }
}
