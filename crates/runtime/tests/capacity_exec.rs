//! Bounded-capacity execution tests for [`ShardedRuntime`]: the
//! capacity-stress DAG (deep `inout` chains fanned out wider than the
//! shard tables) must drain deadlock-free at capacity 1 for every worker
//! count, under a watchdog; stall accounting must balance at quiescence;
//! and shutdown must be clean while a submitter is parked on a full
//! shard.

use nexuspp_core::testsupport::with_watchdog;
use nexuspp_runtime::stress::drive_capacity_stress;
use nexuspp_runtime::{Region, ShardCapacity, ShardedRuntime};
use std::sync::Arc;

#[test]
fn capacity_one_stress_is_deadlock_free_for_every_worker_count() {
    for workers in [1usize, 2, 4, 8] {
        with_watchdog(
            120,
            format!("capacity-1 stress, {workers} workers"),
            move || {
                let rt = ShardedRuntime::with_capacity(workers, 4, ShardCapacity::Bounded(1));
                assert_eq!(rt.capacity(), ShardCapacity::Bounded(1));
                drive_capacity_stress(&rt, 8, 40);
                let counts = rt.capacity_counts();
                let total_stalls: u64 = counts.iter().map(|c| c.stalls_observed).sum();
                assert!(
                    total_stalls > 0,
                    "{workers} workers: a 8-chain fan-out through capacity-1 shards \
                     must park the submitter"
                );
                for (s, c) in counts.iter().enumerate() {
                    assert_eq!(
                        c.stalls_observed, c.retries_resolved,
                        "{workers} workers, shard {s}: unresolved stall episodes"
                    );
                    assert_eq!(c.resident, 0, "{workers} workers, shard {s}: leaked slots");
                }
            },
        );
    }
}

#[test]
fn capacity_two_stress_survives_wider_tables_and_more_chains() {
    with_watchdog(120, "capacity-2 stress", || {
        let rt = ShardedRuntime::with_capacity(4, 2, ShardCapacity::Bounded(2));
        drive_capacity_stress(&rt, 16, 25);
        for c in rt.capacity_counts() {
            assert_eq!(c.stalls_observed, c.retries_resolved);
        }
    });
}

#[test]
fn unbounded_runtime_reports_zero_stalls() {
    let rt = ShardedRuntime::new(4, 4);
    assert_eq!(rt.capacity(), ShardCapacity::Unbounded);
    drive_capacity_stress(&rt, 8, 20);
    for (s, c) in rt.capacity_counts().iter().enumerate() {
        assert_eq!(c.stalls_observed, 0, "shard {s}");
        assert_eq!(c.retries_resolved, 0, "shard {s}");
    }
}

#[test]
fn shutdown_is_clean_while_a_submitter_is_parked() {
    with_watchdog(120, "parked-submitter shutdown", || {
        // One shard, capacity 1: a gate task holds the only slot (its
        // closure blocks on a channel), so a second submission must park.
        let rt = Arc::new(ShardedRuntime::with_capacity(
            2,
            1,
            ShardCapacity::Bounded(1),
        ));
        let gate: Region<u64> = rt.region(vec![0]);
        let other: Region<u64> = rt.region(vec![0]);
        let (open_tx, open_rx) = crossbeam::channel::bounded::<()>(1);
        {
            let gate = gate.clone();
            rt.task().inout(&gate).spawn(move |t| {
                open_rx.recv().expect("gate signal");
                t.write(&gate)[0] = 7;
            });
        }
        let submitter = {
            let rt = Arc::clone(&rt);
            let other = other.clone();
            std::thread::spawn(move || {
                // Parks: the single shard's slot is held by the gate task.
                let other2 = other.clone();
                rt.task().inout(&other).spawn(move |t| {
                    t.write(&other2)[0] = 9;
                });
            })
        };
        // Deterministic rendezvous: the park is observed before the gate
        // opens, so the stall is real, then resolves through the finish
        // report while the runtime shuts down normally afterwards.
        while rt.capacity_counts()[0].stalls_observed == 0 {
            std::thread::yield_now();
        }
        open_tx.send(()).expect("worker waits on the gate");
        submitter.join().expect("parked submitter must resume");
        rt.barrier();
        assert_eq!(rt.with_data(&gate, |v| v[0]), 7);
        assert_eq!(rt.with_data(&other, |v| v[0]), 9);
        let c = &rt.capacity_counts()[0];
        assert_eq!((c.stalls_observed, c.retries_resolved), (1, 1));
        drop(rt); // workers join; Drop must not hang or panic
    });
}
