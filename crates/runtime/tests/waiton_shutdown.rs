//! Regression tests for the two historical `wait_on` defects plus the
//! explicit shutdown hooks, on both runtime backends:
//!
//! 1. **Teardown panic** — `rx.recv().expect("wait_on probe vanished")`
//!    panicked when the runtime tore down with the waiter still blocked
//!    (the probe task dropped unexecuted). The waiter must now return
//!    cleanly, both when the runtime is dropped under it and when a
//!    hard-deadline shutdown cancels the probe.
//! 2. **Worker starvation** — the waiter used to block on a channel
//!    instead of helping. It is now scheduler-aware: a graph completes
//!    at `workers == 0` with a single waiter executing everything.
//!
//! Plus: explicit `shutdown()` reports every task executed, and
//! `shutdown_deadline()` past its deadline cancel-finishes queued
//! bodies exactly once (executed + cancelled == submitted).

use nexuspp_core::testsupport::with_watchdog;
use nexuspp_runtime::{Runtime, SchedulerKind, ShardedRuntime};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const KINDS: [SchedulerKind; 2] = [SchedulerKind::MutexQueue, SchedulerKind::WorkStealing];

/// A chain of `len` inout tasks over one region; returns the counter
/// every task bumps.
fn spawn_chain_single(
    rt: &Runtime,
    region: &nexuspp_runtime::Region<u64>,
    len: u64,
) -> Arc<AtomicU64> {
    let ran = Arc::new(AtomicU64::new(0));
    for _ in 0..len {
        let r = region.clone();
        let ran = Arc::clone(&ran);
        rt.task().inout(region).spawn(move |t| {
            let mut v = t.write(&r);
            v[0] += 1;
            ran.fetch_add(1, Ordering::SeqCst);
        });
    }
    ran
}

#[test]
fn waiter_executes_the_graph_at_zero_workers_single_engine() {
    for kind in KINDS {
        with_watchdog(60, format!("single zero-worker {kind:?}"), move || {
            let rt = Runtime::with_scheduler(0, kind);
            let region = rt.region(vec![0u64]);
            let ran = spawn_chain_single(&rt, &region, 64);
            // The only thread able to execute anything is this waiter.
            rt.wait_on(&region);
            assert_eq!(ran.load(Ordering::SeqCst), 64, "{kind:?}");
            assert_eq!(rt.with_data(&region, |v| v[0]), 64, "{kind:?}");
        });
    }
}

#[test]
fn waiter_executes_the_graph_at_zero_workers_sharded() {
    for kind in KINDS {
        with_watchdog(60, format!("sharded zero-worker {kind:?}"), move || {
            let rt = ShardedRuntime::with_scheduler(0, 4, kind);
            let region = rt.region(vec![0u64]);
            let ran = Arc::new(AtomicU64::new(0));
            for _ in 0..64 {
                let r = region.clone();
                let ran = Arc::clone(&ran);
                rt.task().inout(&region).spawn(move |t| {
                    let mut v = t.write(&r);
                    v[0] += 1;
                    ran.fetch_add(1, Ordering::SeqCst);
                });
            }
            rt.wait_on(&region);
            assert_eq!(ran.load(Ordering::SeqCst), 64, "{kind:?}");
            assert_eq!(rt.with_data(&region, |v| v[0]), 64, "{kind:?}");
        });
    }
}

#[test]
fn dropping_the_runtime_under_a_parked_waiter_is_clean() {
    for kind in KINDS {
        with_watchdog(60, format!("drop under waiter {kind:?}"), move || {
            let rt = Arc::new(ShardedRuntime::with_scheduler(2, 4, kind));
            let region = rt.region(vec![0u64]);
            let gate = Arc::new(AtomicBool::new(false));
            {
                let r = region.clone();
                let gate = Arc::clone(&gate);
                rt.task().inout(&region).spawn(move |t| {
                    while !gate.load(Ordering::SeqCst) {
                        std::thread::yield_now();
                    }
                    t.write(&r)[0] = 7;
                });
            }
            let waiter = {
                let rt = Arc::clone(&rt);
                let region = region.clone();
                std::thread::spawn(move || rt.wait_on(&region))
            };
            // Let the waiter park behind the gated producer, then drop
            // the main handle: the waiter thread now owns the runtime,
            // so the full teardown (drain + worker join) runs on the
            // thread that was parked. It must return normally — never
            // panic, never deadlock joining itself.
            std::thread::sleep(Duration::from_millis(20));
            gate.store(true, Ordering::SeqCst);
            drop(rt);
            waiter.join().expect("waiter must not panic on teardown");
        });
    }
}

#[test]
fn hard_deadline_shutdown_cancels_the_probe_and_the_waiter_returns() {
    for kind in KINDS {
        with_watchdog(60, format!("abort under waiter {kind:?}"), move || {
            let rt = Arc::new(ShardedRuntime::with_scheduler(1, 4, kind));
            let region = rt.region(vec![0u64]);
            let gate = Arc::new(AtomicBool::new(false));
            {
                let r = region.clone();
                let gate = Arc::clone(&gate);
                rt.task().inout(&region).spawn(move |t| {
                    while !gate.load(Ordering::SeqCst) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    t.write(&r)[0] = 7;
                });
            }
            let waiter = {
                let rt = Arc::clone(&rt);
                let region = region.clone();
                std::thread::spawn(move || rt.wait_on(&region))
            };
            std::thread::sleep(Duration::from_millis(20));
            // Producer still gated: the deadline elapses, the abort path
            // engages. Release the gate afterwards so the running body
            // finishes; the woken probe then cancel-finishes (dropping
            // its sender) and the parked waiter must return cleanly —
            // this is the exact disconnect that used to panic.
            let release = {
                let gate = Arc::clone(&gate);
                std::thread::spawn(move || {
                    std::thread::sleep(Duration::from_millis(100));
                    gate.store(true, Ordering::SeqCst);
                })
            };
            let report = rt.shutdown_deadline(Duration::from_millis(30));
            assert!(!report.graceful, "{kind:?}: deadline should have fired");
            assert_eq!(report.executed, 1, "{kind:?}: the gated producer ran");
            assert_eq!(report.cancelled, 1, "{kind:?}: the probe was cancelled");
            waiter
                .join()
                .expect("waiter must not panic when its probe is cancelled");
            release.join().unwrap();
        });
    }
}

#[test]
fn graceful_shutdown_reports_everything_executed() {
    let rt = Runtime::new(2);
    let region = rt.region(vec![0u64]);
    let ran = spawn_chain_single(&rt, &region, 32);
    let report = rt.shutdown();
    assert!(report.graceful);
    assert_eq!(report.executed, 32);
    assert_eq!(report.cancelled, 0);
    assert_eq!(ran.load(Ordering::SeqCst), 32);
}

#[test]
fn sharded_hard_deadline_splits_executed_and_cancelled_exactly_once() {
    with_watchdog(60, "sharded deadline split", || {
        let rt = ShardedRuntime::new(1, 4);
        let region = rt.region(vec![0u64]);
        let gate = Arc::new(AtomicBool::new(false));
        let ran = Arc::new(AtomicU64::new(0));
        // One gated head task, then a chain behind it. Everything behind
        // the head is queued or parked when the deadline fires.
        {
            let r = region.clone();
            let gate = Arc::clone(&gate);
            let ran = Arc::clone(&ran);
            rt.task().inout(&region).spawn(move |t| {
                while !gate.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                t.write(&r)[0] += 1;
                ran.fetch_add(1, Ordering::SeqCst);
            });
        }
        for _ in 0..15 {
            let r = region.clone();
            let ran = Arc::clone(&ran);
            rt.task().inout(&region).spawn(move |t| {
                t.write(&r)[0] += 1;
                ran.fetch_add(1, Ordering::SeqCst);
            });
        }
        let release = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(80));
                gate.store(true, Ordering::SeqCst);
            })
        };
        let report = rt.shutdown_deadline(Duration::from_millis(20));
        release.join().unwrap();
        assert!(!report.graceful);
        assert_eq!(
            report.executed + report.cancelled,
            16,
            "every submitted task retires exactly once"
        );
        assert_eq!(report.executed, ran.load(Ordering::SeqCst));
        assert!(report.cancelled >= 1, "the queued chain was cancelled");
    });
}
