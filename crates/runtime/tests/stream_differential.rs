//! Online ≡ offline: the `Collector`'s live `GraphTracker` — fed
//! incrementally by the background thread while workers are still
//! executing — must end in exactly the state a fresh tracker reaches
//! when replaying the same stream from a quiescent drain.
//!
//! Covered matrix: both backends ([`Runtime`] and [`ShardedRuntime`]),
//! {1, 4} workers, and (sharded) both wake modes. Each configuration
//! also asserts the properties that make the live view *live*:
//!
//! * mid-run, the tracker observes a nonzero number of tasks in the
//!   intermediate states (Stalled / Ready / Running) — it is watching
//!   the run, not summarizing it afterwards;
//! * the state machine sees zero illegal transitions on real streams;
//! * with the collector attached and polling, the lock-free wake path
//!   still performs zero shard-lock acquisitions — observation does
//!   not re-serialize delivery.

use nexuspp_core::ShardCapacity;
use nexuspp_obs::{Collector, CollectorReport, GraphTracker, Recorder, Subscriber, TaskState};
use nexuspp_runtime::{Runtime, ShardedRuntime};
use nexuspp_sched::SchedulerKind;
use nexuspp_shard::WakeMode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CHAINS: usize = 8;
const DEPTH: usize = 24;
const INDEPENDENT: usize = 32;
/// Per-task busy time: long enough that the run outlives several
/// collector ticks (2 ms default interval), short enough for CI.
const TASK_SLEEP: Duration = Duration::from_micros(200);

fn task_count() -> u64 {
    (CHAINS * DEPTH + INDEPENDENT) as u64
}

/// Spawn the shared workload on either backend: `CHAINS` inout chains
/// of `DEPTH` (every link waits on its predecessor → plenty of Stalled
/// dwell time and wake edges) plus `INDEPENDENT` instantly-ready
/// tasks. Both runtimes expose the same task-builder surface, so this
/// is a macro rather than a trait.
macro_rules! spawn_workload {
    ($rt:expr) => {{
        let executed = Arc::new(AtomicU64::new(0));
        let chains: Vec<_> = (0..CHAINS).map(|_| $rt.region(vec![0u64])).collect();
        for _ in 0..DEPTH {
            for r in &chains {
                let executed = Arc::clone(&executed);
                $rt.task().inout(r).spawn(move |_| {
                    std::thread::sleep(TASK_SLEEP);
                    executed.fetch_add(1, Ordering::Relaxed);
                });
            }
        }
        for _ in 0..INDEPENDENT {
            let r = $rt.region(vec![0u64]);
            let executed = Arc::clone(&executed);
            $rt.task().output(&r).spawn(move |_| {
                std::thread::sleep(TASK_SLEEP);
                executed.fetch_add(1, Ordering::Relaxed);
            });
        }
        executed
    }};
}

/// Poll the live tracker until it reports in-flight tasks in the
/// intermediate states, or panic at the deadline.
fn wait_for_mid_flight(collector: &Collector) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let snap = collector.tracker();
        let intermediate = snap.count(TaskState::Stalled)
            + snap.count(TaskState::Ready)
            + snap.count(TaskState::Running);
        if intermediate > 0 && snap.count(TaskState::Finished) < task_count() {
            return intermediate;
        }
        assert!(
            Instant::now() < deadline,
            "live tracker never observed tasks in intermediate states \
             (snapshot: {} seen, {} finished)",
            snap.tasks_seen,
            snap.count(TaskState::Finished)
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Post-run assertions shared by every configuration. `wake_locks` is
/// the sharded lock-free runs' delivery-lock counter (None where there
/// is nothing to assert).
fn verify(
    label: &str,
    report: &CollectorReport,
    replay_sub: &mut Subscriber,
    mid_flight: u64,
    wake_locks: Option<u64>,
) {
    assert_eq!(
        report.stream.dropped, 0,
        "{label}: event rings must not overflow"
    );
    assert_eq!(
        report.missed, 0,
        "{label}: the collector's subscriber must never lag off history"
    );

    // Offline replay of the same released stream.
    let events = replay_sub.poll();
    assert_eq!(
        replay_sub.missed(),
        0,
        "{label}: history must hold the whole run"
    );
    assert_eq!(events.len() as u64, report.stream.released);
    let mut quiescent = GraphTracker::new();
    quiescent.apply_batch(&events);

    // The acceptance bar: live == offline, exactly.
    assert_eq!(
        report.tracker.snapshot(),
        quiescent.snapshot(),
        "{label}: live tracker must agree with the quiescent replay"
    );
    assert_eq!(
        report.tracker.edges(),
        quiescent.edges(),
        "{label}: edge sets"
    );

    // And the final state is the one a finished run must have.
    let snap = report.tracker.snapshot();
    assert_eq!(snap.count(TaskState::Finished), task_count(), "{label}");
    assert_eq!(snap.in_flight(), 0, "{label}");
    assert_eq!(
        snap.violations, 0,
        "{label}: no illegal transitions on a real stream"
    );
    assert_eq!(snap.tasks_seen, task_count(), "{label}");
    assert!(
        snap.edges > 0,
        "{label}: chain workload must produce wake edges"
    );
    assert!(mid_flight > 0, "{label}");

    if let Some(locks) = wake_locks {
        assert_eq!(
            locks, 0,
            "{label}: lock-free wake delivery must stay lock-free with a live collector"
        );
    }
}

fn check_sharded(workers: usize, mode: WakeMode) {
    let label = format!("sharded/{workers}w/{}", mode.name());
    let collector = Collector::new(Arc::new(Recorder::new(workers)));
    // A second subscriber on the same stream: after the collector's
    // final poll it replays the exact released sequence quiescently.
    let mut replay_sub = collector.stream().clone().subscribe();

    let rt = ShardedRuntime::with_observer(
        workers,
        4,
        SchedulerKind::WorkStealing,
        ShardCapacity::Unbounded,
        mode,
        &collector,
    );
    let executed = spawn_workload!(rt);
    let mid_flight = wait_for_mid_flight(&collector);
    rt.barrier();
    assert_eq!(executed.load(Ordering::Relaxed), task_count());
    let locks = rt.wake_counts().delivery_lock_acquisitions;
    // Join the workers before stopping the collector so its final poll
    // is a complete quiescent drain (no straggler park events).
    drop(rt);
    let report = collector.finish();

    let wake_locks = (mode == WakeMode::LockFree).then_some(locks);
    verify(&label, &report, &mut replay_sub, mid_flight, wake_locks);
}

fn check_single(workers: usize) {
    let label = format!("single/{workers}w");
    let collector = Collector::new(Arc::new(Recorder::new(workers)));
    let mut replay_sub = collector.stream().clone().subscribe();

    let rt = Runtime::with_observer(workers, SchedulerKind::WorkStealing, &collector);
    let executed = spawn_workload!(rt);
    let mid_flight = wait_for_mid_flight(&collector);
    rt.barrier();
    assert_eq!(executed.load(Ordering::Relaxed), task_count());
    drop(rt);
    let report = collector.finish();

    verify(&label, &report, &mut replay_sub, mid_flight, None);
}

#[test]
fn sharded_lock_free_live_tracker_matches_quiescent_replay() {
    for workers in [1, 4] {
        check_sharded(workers, WakeMode::LockFree);
    }
}

#[test]
fn sharded_locked_live_tracker_matches_quiescent_replay() {
    for workers in [1, 4] {
        check_sharded(workers, WakeMode::Locked);
    }
}

#[test]
fn single_engine_live_tracker_matches_quiescent_replay() {
    for workers in [1, 4] {
        check_single(workers);
    }
}
