//! Property test: arbitrary dataflow programs executed by the threaded
//! runtime always produce the sequential (submission-order) result,
//! regardless of worker count, task shape, or scheduling interleaving.

use nexuspp_runtime::Runtime;
use proptest::prelude::*;

/// One scripted operation: dst = f(src1, src2) over single-cell regions.
#[derive(Debug, Clone, Copy)]
struct Op {
    dst: usize,
    src1: usize,
    src2: usize,
    mul: u64,
    high_priority: bool,
}

fn op_strategy(regions: usize) -> impl Strategy<Value = Op> {
    (0..regions, 0..regions, 0..regions, 1u64..7, prop::bool::ANY).prop_map(
        |(dst, src1, src2, mul, high_priority)| Op {
            dst,
            src1,
            src2,
            mul,
            high_priority,
        },
    )
}

fn apply(vals: &mut [u64], op: Op) {
    vals[op.dst] = vals[op.src1]
        .wrapping_mul(op.mul)
        .wrapping_add(vals[op.src2])
        .wrapping_add(1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_equals_sequential(
        script in prop::collection::vec(op_strategy(5), 1..120),
        workers in 1usize..9,
    ) {
        const REGIONS: usize = 5;
        // Sequential reference.
        let mut reference = [1u64; REGIONS];
        for &op in &script {
            apply(&mut reference, op);
        }

        // Parallel execution with declared accesses.
        let rt = Runtime::new(workers);
        let regions: Vec<_> = (0..REGIONS).map(|_| rt.region(vec![1u64])).collect();
        for &op in &script {
            let d = regions[op.dst].clone();
            let s1 = regions[op.src1].clone();
            let s2 = regions[op.src2].clone();
            let mut b = rt.task();
            // Declare reads for both sources and a write (or inout when a
            // source aliases the destination) — normalization merges the
            // duplicate declarations.
            b = b.input(&regions[op.src1]).input(&regions[op.src2]);
            b = if op.dst == op.src1 || op.dst == op.src2 {
                b.inout(&regions[op.dst])
            } else {
                b.output(&regions[op.dst])
            };
            if op.high_priority {
                b = b.high_priority();
            }
            b.spawn(move |t| {
                let v1 = t.read(&s1)[0];
                let v2 = t.read(&s2)[0];
                t.write(&d)[0] = v1.wrapping_mul(op.mul).wrapping_add(v2).wrapping_add(1);
            });
        }
        rt.barrier();
        for (k, r) in regions.iter().enumerate() {
            prop_assert_eq!(rt.with_data(r, |v| v[0]), reference[k], "region {}", k);
        }
    }
}
