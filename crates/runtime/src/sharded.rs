//! The sharded runtime: the same StarSs-like API as
//! [`Runtime`](crate::Runtime), with dependency resolution partitioned
//! over N engines behind per-shard locks.
//!
//! [`Runtime`](crate::Runtime) funnels every `submit`/`finish` through a
//! single `Mutex<DependencyEngine>` — the software re-creation of the
//! centralized Task Maestro, and under many workers the dominant
//! serialization point. [`ShardedRuntime`] replaces that global lock with
//! a [`ShardDispatcher`]: workers finishing tasks lock only the shards
//! whose addresses the task actually touched, disjoint completions retire
//! fully in parallel, and the dispatcher's deferred-finish rings let one
//! lock holder drain a burst of queued completions in a single
//! acquisition. Readiness semantics are identical — the dispatcher
//! composes the same `DependencyEngine` the single-lock runtime uses, and
//! the sharded composition is differentially verified against it and the
//! oracle in `nexuspp-shard`.
//!
//! Ready tasks flow through the same [`nexuspp_sched::Scheduler`] as the
//! single-engine runtime (work-stealing by default, the mutex queue
//! selectable for comparison). A finish report's wakes — which may
//! include tasks drained on behalf of other workers — are delivered as
//! **one** batched scheduling operation: under the mutex queue that is
//! one lock acquisition and one `Wake(n)` token instead of a queue-lock +
//! channel-send per wake; under work stealing the whole burst lands on
//! the finishing worker's own deque and idle workers steal it back out.
//!
//! Between the shards and the scheduler sits the dispatcher's wake path
//! (see [`WakeMode`]): under the default lock-free mode a worker never
//! holds a shard lock across wake delivery — ready tasks post to
//! per-shard MPSC wake lists as the lock is released, and the worker
//! drains whatever lists it can claim (its own wakes, plus any a
//! concurrent finisher posted and skipped) straight into `wake_batch`.

use crate::region::{Region, RegionId};
use crate::runtime::{sched_counters, Grants, Job, ShutdownReport, TaskCtx};
use crossbeam::channel::{RecvTimeoutError, TryRecvError};
use nexuspp_core::{NexusConfig, Priority, ShardCapacity, Submission, SubmitError};
use nexuspp_obs::{EventKind, MetricsRegistry, Recorder};
use nexuspp_sched::{SchedCounts, Scheduler, SchedulerKind, WorkerHandle};
use nexuspp_shard::{CapacityCounts, ShardDispatcher, TaskTicket, WakeCounts, WakeMode};
use nexuspp_trace::normalize::normalize_params;
use nexuspp_trace::{AccessMode, Param};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Payload delivered when a task becomes ready.
struct Work {
    grants: Grants,
    job: Job,
    prio: Priority,
}

/// A scheduled unit: the dispatcher ticket plus the work to run.
type Ready = (TaskTicket<Work>, Work);

/// A submission rejected by
/// [`try_spawn_lowered`](ShardedRuntime::try_spawn_lowered), handed
/// back intact (closure included) for resubmission once the retryable
/// condition clears. Opaque: the closure cannot be recovered, only
/// resubmitted via [`try_respawn`](ShardedRuntime::try_respawn).
pub struct PendingSpawn {
    fptr: u64,
    tag: u64,
    params: Vec<Param>,
    work: Work,
}

impl PendingSpawn {
    /// The caller tag of the rejected submission.
    pub fn tag(&self) -> u64 {
        self.tag
    }
}

struct Inner {
    dispatcher: ShardDispatcher<Work>,
    sched: Scheduler<Ready>,
    /// Tag counter; atomic so submissions don't serialize on a lock.
    submitted: AtomicU64,
    /// Tasks spawned and not yet fully retired. This lock pairs with the
    /// `quiescent` condvar, so it cannot be an atomic.
    pending: Mutex<u64>,
    quiescent: Condvar,
    /// First task panic observed (re-raised at the next barrier).
    panicked: Mutex<Option<String>>,
    /// Hard-deadline shutdown flag: once set, ready tasks cancel-finish
    /// (their bodies are dropped unexecuted but they still retire
    /// through the dispatcher, so the graph drains and `pending`
    /// reaches zero).
    aborting: AtomicBool,
    /// Tasks whose bodies ran (including panicking ones).
    executed: AtomicU64,
    /// Tasks cancel-finished by a hard-deadline shutdown.
    cancelled: AtomicU64,
    /// Lifecycle-event recorder for the exec phase; the dispatcher holds
    /// its own clone for the resolution/wake phases. `None` when the
    /// runtime was built without one.
    obs: Option<Arc<Recorder>>,
}

/// Declarative task builder for the sharded runtime (same surface as
/// [`TaskBuilder`](crate::TaskBuilder)).
pub struct ShardedTaskBuilder<'rt> {
    rt: &'rt ShardedRuntime,
    accesses: Vec<(RegionId, AccessMode)>,
    high_priority: bool,
}

impl<'rt> ShardedTaskBuilder<'rt> {
    /// Declare a read-only parameter.
    pub fn input<T>(mut self, r: &Region<T>) -> Self {
        self.accesses.push((r.id(), AccessMode::In));
        self
    }

    /// Declare a write-only parameter.
    pub fn output<T>(mut self, r: &Region<T>) -> Self {
        self.accesses.push((r.id(), AccessMode::Out));
        self
    }

    /// Declare a read-write parameter.
    pub fn inout<T>(mut self, r: &Region<T>) -> Self {
        self.accesses.push((r.id(), AccessMode::InOut));
        self
    }

    /// Mark the task high priority: once ready, it overtakes queued
    /// normal-priority tasks.
    pub fn high_priority(mut self) -> Self {
        self.high_priority = true;
        self
    }

    /// Submit the task. It runs as soon as its dependencies allow. Under
    /// a bounded [`ShardCapacity`] this blocks while any involved shard
    /// is full, resuming on that shard's next finish report.
    pub fn spawn(self, f: impl FnOnce(&TaskCtx) + Send + 'static) {
        let params: Vec<Param> = self
            .accesses
            .iter()
            .map(|(id, m)| Param::new(id.0, 1, *m))
            .collect();
        let params = normalize_params(&params);
        let grants: Grants = Arc::new(params.iter().map(|p| (RegionId(p.addr), p.mode)).collect());
        let inner = &self.rt.inner;
        {
            let mut p = inner.pending.lock();
            *p += 1;
        }
        let tag = inner.submitted.fetch_add(1, Ordering::Relaxed) + 1;
        let prio = Priority::from_high_flag(self.high_priority);
        let work = Work {
            grants,
            job: Box::new(f),
            prio,
        };
        let res = inner.dispatcher.submit(0, tag, &params, work);
        if let Some(work) = res.ready {
            inner.sched.submit((res.ticket, work), prio);
        }
        // A parked task's ticket resurfaces in some FinishReport::woken.
    }
}

/// The StarSs-like runtime over sharded, per-shard-locked resolution.
pub struct ShardedRuntime {
    inner: Arc<Inner>,
    /// Behind a mutex so [`shutdown`](Self::shutdown) can join through
    /// `&self` (services share the runtime in an `Arc`).
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl ShardedRuntime {
    /// Start a runtime with `n` worker threads resolving dependencies
    /// across `shards` engines, scheduling through the default
    /// (work-stealing) scheduler.
    pub fn new(n: usize, shards: usize) -> Self {
        ShardedRuntime::with_scheduler(n, shards, SchedulerKind::default())
    }

    /// Start a runtime with an explicit ready-task scheduler kind.
    pub fn with_scheduler(n: usize, shards: usize, kind: SchedulerKind) -> Self {
        ShardedRuntime::with_options(
            n,
            shards,
            kind,
            ShardCapacity::Unbounded,
            WakeMode::default(),
        )
    }

    /// Start a bounded runtime (default scheduler): each shard holds at
    /// most `capacity` resident tasks. A `spawn` whose shards are full
    /// **blocks the submitting thread** until the workers' finish reports
    /// free a slot — the software form of the paper's master-core stall —
    /// so spawn tasks in dependency order (producers first), which the
    /// builder API yields naturally from a single submitting thread.
    pub fn with_capacity(n: usize, shards: usize, capacity: ShardCapacity) -> Self {
        ShardedRuntime::with_options(
            n,
            shards,
            SchedulerKind::default(),
            capacity,
            WakeMode::default(),
        )
    }

    /// Start a runtime with every knob explicit, including how finish
    /// reports deliver wakes out of the shards ([`WakeMode`]: lock-free
    /// wake lists by default, the locked kick-off baseline selectable
    /// for comparison).
    pub fn with_options(
        n: usize,
        shards: usize,
        kind: SchedulerKind,
        capacity: ShardCapacity,
        wake_mode: WakeMode,
    ) -> Self {
        ShardedRuntime::build(n, shards, kind, capacity, wake_mode, None)
    }

    /// Start a runtime (every knob explicit) that records lifecycle
    /// events into `rec`: the dispatcher stamps the resolution and wake
    /// phases (with real shard ids), the scheduler stamps steals and
    /// idle parks, and the workers stamp the exec phase. Drain with
    /// [`nexuspp_obs::Recorder::drain`] after a
    /// [`barrier`](Self::barrier) for a causally ordered stream.
    pub fn with_recorder(
        n: usize,
        shards: usize,
        kind: SchedulerKind,
        capacity: ShardCapacity,
        wake_mode: WakeMode,
        rec: Arc<Recorder>,
    ) -> Self {
        ShardedRuntime::build(n, shards, kind, capacity, wake_mode, Some(rec))
    }

    /// Start a runtime (every knob explicit) observed *online* by
    /// `collector` ([`nexuspp_obs::Collector`]): lifecycle events
    /// stream into the collector's recorder — its background thread
    /// keeps a live [`nexuspp_obs::GraphTracker`] current while tasks
    /// are in flight — and this runtime's [`metrics`](Self::metrics)
    /// registry is attached for periodic sampling. The wake path keeps
    /// its lock-freedom guarantee with the collector attached
    /// (producers only CAS into their event lanes; the collector only
    /// drains the consumer side). Call
    /// [`Collector::finish`](nexuspp_obs::Collector::finish) after the
    /// runtime joins for the complete final state.
    pub fn with_observer(
        n: usize,
        shards: usize,
        kind: SchedulerKind,
        capacity: ShardCapacity,
        wake_mode: WakeMode,
        collector: &nexuspp_obs::Collector,
    ) -> Self {
        let rt = ShardedRuntime::build(
            n,
            shards,
            kind,
            capacity,
            wake_mode,
            Some(collector.recorder()),
        );
        collector.attach_registry(Arc::new(rt.metrics()));
        rt
    }

    fn build(
        n: usize,
        shards: usize,
        kind: SchedulerKind,
        capacity: ShardCapacity,
        wake_mode: WakeMode,
        obs: Option<Arc<Recorder>>,
    ) -> Self {
        // n == 0 is allowed: no worker threads are spawned and every
        // task executes inside a scheduler-aware waiter (`wait_on`).
        let (mut sched, handles) = Scheduler::new(kind, n);
        let mut dispatcher =
            ShardDispatcher::with_mode(shards, &NexusConfig::unbounded(), capacity, wake_mode);
        if let Some(rec) = &obs {
            sched.set_recorder(Arc::clone(rec), |r: &Ready| r.0.tag());
            dispatcher = dispatcher.with_recorder(Arc::clone(rec));
        }
        let inner = Arc::new(Inner {
            dispatcher,
            sched,
            submitted: AtomicU64::new(0),
            pending: Mutex::new(0),
            quiescent: Condvar::new(),
            panicked: Mutex::new(None),
            aborting: AtomicBool::new(false),
            executed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            obs,
        });
        let workers = handles
            .into_iter()
            .map(|h| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("nexuspp-shard-worker-{}", h.id()))
                    .spawn(move || worker_loop(&inner, &h))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        ShardedRuntime {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// Number of shards resolution is partitioned over.
    pub fn n_shards(&self) -> usize {
        self.inner.dispatcher.n_shards()
    }

    /// The per-shard residency bound this runtime submits under.
    pub fn capacity(&self) -> ShardCapacity {
        self.inner.dispatcher.capacity()
    }

    /// Per-shard stall/retry counters (exact once quiescent — call after
    /// [`barrier`](Self::barrier)).
    pub fn capacity_counts(&self) -> Vec<CapacityCounts> {
        self.inner.dispatcher.capacity_counts()
    }

    /// Which ready-task scheduler this runtime drives.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        self.inner.sched.kind()
    }

    /// How this runtime's workers deliver wakes out of the shards.
    pub fn wake_mode(&self) -> WakeMode {
        self.inner.dispatcher.wake_mode()
    }

    /// Wake-path activity counters — records delivered, drain attempts,
    /// time in the drain step, and the shard-lock acquisitions it
    /// performed (zero under [`WakeMode::LockFree`]). Exact once
    /// quiescent — call after [`barrier`](Self::barrier).
    pub fn wake_counts(&self) -> WakeCounts {
        self.inner.dispatcher.wake_counts()
    }

    /// Scheduler activity counters (steals, parks, …; exact once
    /// quiescent — call after [`barrier`](Self::barrier)).
    pub fn sched_counts(&self) -> SchedCounts {
        self.inner.sched.counts()
    }

    /// The lifecycle-event recorder this runtime stamps into, if built
    /// with [`with_recorder`](Self::with_recorder).
    pub fn recorder(&self) -> Option<&Arc<Recorder>> {
        self.inner.obs.as_ref()
    }

    /// Build a [`MetricsRegistry`] over every counter surface this
    /// runtime exposes: task accounting (`tasks`), scheduler activity
    /// (`sched`), wake-path counters (`wake`), capacity stall/retry
    /// totals including parked time (`capacity`), and — when a recorder
    /// is attached — event-ring accounting (`events`). Snapshots are
    /// exact at quiescence.
    pub fn metrics(&self) -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        let inner = Arc::clone(&self.inner);
        reg.register("tasks", move || {
            vec![
                ("submitted".into(), inner.submitted.load(Ordering::Relaxed)),
                ("pending".into(), *inner.pending.lock()),
                ("executed".into(), inner.executed.load(Ordering::Relaxed)),
                ("cancelled".into(), inner.cancelled.load(Ordering::Relaxed)),
            ]
        });
        let inner = Arc::clone(&self.inner);
        reg.register("sched", move || sched_counters(&inner.sched.counts()));
        let inner = Arc::clone(&self.inner);
        reg.register("wake", move || {
            let w = inner.dispatcher.wake_counts();
            vec![
                ("delivered".into(), w.delivered),
                ("deliveries".into(), w.deliveries),
                ("delivery_ns".into(), w.delivery_ns),
                (
                    "delivery_lock_acquisitions".into(),
                    w.delivery_lock_acquisitions,
                ),
            ]
        });
        let inner = Arc::clone(&self.inner);
        reg.register("capacity", move || {
            let per_shard = inner.dispatcher.capacity_counts();
            let mut stalls = 0;
            let mut retries = 0;
            let mut stall_ns = 0;
            let mut resident = 0u64;
            for c in &per_shard {
                stalls += c.stalls_observed;
                retries += c.retries_resolved;
                stall_ns += c.stall_ns;
                resident += c.resident as u64;
            }
            vec![
                ("stalls_observed".into(), stalls),
                ("retries_resolved".into(), retries),
                ("stall_ns".into(), stall_ns),
                ("resident".into(), resident),
            ]
        });
        if let Some(rec) = &self.inner.obs {
            let rec = Arc::clone(rec);
            reg.register("events", move || {
                vec![
                    ("recorded".into(), rec.recorded()),
                    ("dropped".into(), rec.dropped()),
                ]
            });
        }
        reg
    }

    /// Allocate a data region managed by this runtime.
    pub fn region<T>(&self, data: Vec<T>) -> Region<T> {
        Region::new(data)
    }

    /// Begin declaring a task.
    pub fn task(&self) -> ShardedTaskBuilder<'_> {
        ShardedTaskBuilder {
            rt: self,
            accesses: Vec::new(),
            high_priority: false,
        }
    }

    /// Submit a pre-addressed task — a [`Submission`] whose parameter
    /// addresses were already assigned, typically by the resource-
    /// versioning frontend's lowering — and run `f` when its declared
    /// dependencies allow. No [`Region`]s are involved: the addresses
    /// *are* the dependence-table keys, so `f` receives no data context.
    /// Capacity semantics match [`spawn`](ShardedTaskBuilder::spawn)
    /// (bounded shards block the submitter until a slot frees).
    ///
    /// # Panics
    ///
    /// Panics if the submission fails validation (duplicate parameter
    /// addresses) — [`TaskBuilder`](nexuspp_core::TaskBuilder)-built
    /// submissions are always valid.
    pub fn spawn_lowered(&self, sub: Submission, f: impl FnOnce() + Send + 'static) {
        sub.validate().expect("invalid lowered submission");
        let prio = sub.priority;
        let (fptr, tag, params) = sub.into_parts();
        let grants: Grants = Arc::new(params.iter().map(|p| (RegionId(p.addr), p.mode)).collect());
        let inner = &self.inner;
        {
            let mut p = inner.pending.lock();
            *p += 1;
        }
        inner.submitted.fetch_add(1, Ordering::Relaxed);
        let work = Work {
            grants,
            job: Box::new(move |_ctx| f()),
            prio,
        };
        let res = inner.dispatcher.submit(fptr, tag, &params, work);
        if let Some(work) = res.ready {
            inner.sched.submit((res.ticket, work), prio);
        }
    }

    /// Non-blocking form of [`spawn_lowered`](Self::spawn_lowered): a
    /// submission whose shards are at their [`ShardCapacity`] bound is
    /// handed back as a [`PendingSpawn`] with a retryable
    /// [`SubmitError`] instead of parking the submitting thread — the
    /// backpressure primitive service ingress layers signal to remote
    /// clients. Resubmit the returned [`PendingSpawn`] with
    /// [`try_respawn`](Self::try_respawn) after a finish frees slots.
    /// Validation failures (duplicate addresses) surface the same way
    /// with a non-retryable error.
    pub fn try_spawn_lowered(
        &self,
        sub: Submission,
        f: impl FnOnce() + Send + 'static,
    ) -> Result<(), (SubmitError, PendingSpawn)> {
        let prio = sub.priority;
        let (fptr, tag, params) = sub.into_parts();
        let grants: Grants = Arc::new(params.iter().map(|p| (RegionId(p.addr), p.mode)).collect());
        let work = Work {
            grants,
            job: Box::new(move |_ctx| f()),
            prio,
        };
        self.try_submit_work(PendingSpawn {
            fptr,
            tag,
            params,
            work,
        })
    }

    /// Resubmit a spawn previously rejected by
    /// [`try_spawn_lowered`](Self::try_spawn_lowered).
    pub fn try_respawn(&self, p: PendingSpawn) -> Result<(), (SubmitError, PendingSpawn)> {
        self.try_submit_work(p)
    }

    fn try_submit_work(&self, p: PendingSpawn) -> Result<(), (SubmitError, PendingSpawn)> {
        let PendingSpawn {
            fptr,
            tag,
            params,
            work,
        } = p;
        let prio = work.prio;
        let inner = &self.inner;
        {
            let mut pending = inner.pending.lock();
            *pending += 1;
        }
        match inner.dispatcher.try_submit(fptr, tag, &params, work) {
            Ok(res) => {
                inner.submitted.fetch_add(1, Ordering::Relaxed);
                if let Some(work) = res.ready {
                    inner.sched.submit((res.ticket, work), prio);
                }
                Ok(())
            }
            Err((e, work)) => {
                // Roll the optimistic pending increment back; a barrier
                // waiting concurrently must not count a rejected task.
                let mut pending = inner.pending.lock();
                *pending -= 1;
                if *pending == 0 {
                    inner.quiescent.notify_all();
                }
                drop(pending);
                Err((
                    e,
                    PendingSpawn {
                        fptr,
                        tag,
                        params,
                        work,
                    },
                ))
            }
        }
    }

    /// Block until every producer of `region` submitted so far has
    /// finished (see [`Runtime::wait_on`](crate::Runtime::wait_on)).
    ///
    /// The waiter is scheduler-aware: instead of blocking on a channel
    /// (starving the pool of one thread), it pops/steals ready tasks
    /// and executes them until its probe completes — a graph completes
    /// even at `workers == 0` with a single waiter. If the runtime is
    /// torn down (hard-deadline shutdown cancels the probe), the wait
    /// returns cleanly instead of panicking.
    pub fn wait_on<T>(&self, region: &Region<T>) {
        let (tx, rx) = crossbeam::channel::bounded::<()>(1);
        self.task().input(region).high_priority().spawn(move |_| {
            let _ = tx.send(());
        });
        loop {
            match rx.try_recv() {
                Ok(()) => return,
                // Probe dropped unexecuted: the runtime is aborting; its
                // producers will never run, so there is nothing to wait
                // for.
                Err(TryRecvError::Disconnected) => return,
                Err(TryRecvError::Empty) => {}
            }
            // Help: run one ready task (any task — policy order) rather
            // than sleeping on the probe.
            if let Some((ticket, work)) = self.inner.sched.try_next_external() {
                execute_ready(&self.inner, ticket, work, None);
            } else {
                match rx.recv_timeout(Duration::from_millis(1)) {
                    Ok(()) | Err(RecvTimeoutError::Disconnected) => return,
                    Err(RecvTimeoutError::Timeout) => {}
                }
            }
        }
    }

    /// Graceful explicit shutdown: drain every in-flight task (running
    /// bodies finish, queued tasks execute), then stop and join the
    /// workers. Equivalent to `drop` but hands back a
    /// [`ShutdownReport`] and is callable through a shared reference
    /// (`Arc<ShardedRuntime>` in service deployments). Does not
    /// re-raise task panics. Submitting after shutdown is a caller
    /// error (tasks would queue forever).
    pub fn shutdown(&self) -> ShutdownReport {
        self.shutdown_inner(None)
    }

    /// Shutdown with a hard deadline: wait up to `deadline` for a
    /// graceful drain; past it, flip the abort flag so every
    /// still-queued task **cancel-finishes** — its body is dropped
    /// unexecuted, but it still retires through the dispatcher, so
    /// dependents drain (cascading the cancellation) and quiescence is
    /// reached. Bodies already running are never interrupted; the join
    /// still waits for them.
    pub fn shutdown_deadline(&self, deadline: Duration) -> ShutdownReport {
        self.shutdown_inner(Some(deadline))
    }

    fn shutdown_inner(&self, deadline: Option<Duration>) -> ShutdownReport {
        let mut graceful = true;
        {
            let mut p = self.inner.pending.lock();
            match deadline {
                None => {
                    while *p > 0 {
                        self.inner.quiescent.wait(&mut p);
                    }
                }
                Some(d) => {
                    let start = Instant::now();
                    while *p > 0 {
                        match d.checked_sub(start.elapsed()) {
                            Some(left) if !left.is_zero() => {
                                let _ = self.inner.quiescent.wait_for(&mut p, left);
                            }
                            _ => {
                                graceful = false;
                                break;
                            }
                        }
                    }
                }
            }
        }
        if !graceful {
            self.inner.aborting.store(true, Ordering::SeqCst);
            // Every queued task now cancel-finishes; wait out the
            // remaining (already-running) bodies.
            let mut p = self.inner.pending.lock();
            while *p > 0 {
                self.inner.quiescent.wait(&mut p);
            }
        }
        self.inner.sched.shutdown();
        let handles: Vec<JoinHandle<()>> = self.workers.lock().drain(..).collect();
        for w in handles {
            let _ = w.join();
        }
        ShutdownReport {
            graceful,
            executed: self.inner.executed.load(Ordering::Relaxed),
            cancelled: self.inner.cancelled.load(Ordering::Relaxed),
        }
    }

    /// Wait until every submitted task has finished. Re-raises the first
    /// task panic observed since the last barrier.
    pub fn barrier(&self) {
        let mut p = self.inner.pending.lock();
        while *p > 0 {
            self.inner.quiescent.wait(&mut p);
        }
        drop(p);
        if let Some(msg) = self.inner.panicked.lock().take() {
            panic!("task panicked: {msg}");
        }
    }

    /// Synchronously inspect a region's data (reach quiescence first via
    /// [`barrier`](Self::barrier)).
    pub fn with_data<T, R>(&self, region: &Region<T>, f: impl FnOnce(&[T]) -> R) -> R {
        let guard = region.begin_read();
        f(&guard)
    }

    /// Number of tasks submitted so far.
    pub fn submitted(&self) -> u64 {
        self.inner.submitted.load(Ordering::Relaxed)
    }
}

fn worker_loop(inner: &Arc<Inner>, h: &WorkerHandle<Ready>) {
    Recorder::set_thread_worker(h.id() as u32);
    while let Some((ticket, work)) = inner.sched.next(h) {
        execute_ready(inner, ticket, work, Some(h));
    }
}

/// Run (or, when aborting, cancel) one ready unit and retire it. Shared
/// by the worker loop and scheduler-aware waiters (`h == None` — wakes
/// then go through the external scheduling path).
fn execute_ready(
    inner: &Arc<Inner>,
    ticket: TaskTicket<Work>,
    work: Work,
    h: Option<&WorkerHandle<Ready>>,
) {
    if inner.aborting.load(Ordering::SeqCst) {
        // Hard-deadline shutdown: drop the body unexecuted (releasing
        // its captures — e.g. a wait_on probe's sender, which is how
        // parked waiters learn the runtime is gone) but still retire the
        // task below so the graph drains.
        drop(work.job);
        inner.cancelled.fetch_add(1, Ordering::Relaxed);
    } else {
        let ctx = TaskCtx::from_grants(work.grants);
        if let Some(r) = &inner.obs {
            r.emit(EventKind::ExecStart, ticket.tag(), nexuspp_obs::NO_SHARD);
        }
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (work.job)(&ctx)));
        if let Err(payload) = result {
            inner
                .panicked
                .lock()
                .get_or_insert(crate::runtime::panic_msg(&*payload));
        }
        if let Some(r) = &inner.obs {
            r.emit(EventKind::ExecDone, ticket.tag(), nexuspp_obs::NO_SHARD);
        }
        inner.executed.fetch_add(1, Ordering::Relaxed);
    }
    // Retire through the sharded dispatcher: only the shards this
    // task touched are locked (for table access; wake delivery runs
    // outside the locks under WakeMode::LockFree), and the report may
    // carry wakes and completions drained on behalf of other workers.
    // The whole wake set is delivered as one batched scheduling
    // operation.
    let report = inner.dispatcher.finish(ticket);
    let completed = report.completed;
    let woken: Vec<(Ready, Priority)> = report
        .woken
        .into_iter()
        .map(|(ticket, work)| {
            let prio = work.prio;
            ((ticket, work), prio)
        })
        .collect();
    match h {
        Some(h) => inner.sched.wake_batch(h, woken),
        None => inner.sched.wake_batch_external(woken),
    }
    if completed > 0 {
        let mut p = inner.pending.lock();
        *p -= completed;
        if *p == 0 {
            inner.quiescent.notify_all();
        }
    }
}

impl Drop for ShardedRuntime {
    fn drop(&mut self) {
        // Drain in-flight work (without re-raising task panics — Drop
        // must not panic), then stop every worker and join it. A no-op
        // beyond the scheduler flag if an explicit shutdown already ran.
        {
            let mut p = self.inner.pending.lock();
            while *p > 0 {
                self.inner.quiescent.wait(&mut p);
            }
        }
        self.inner.sched.shutdown();
        let handles: Vec<JoinHandle<()>> = self.workers.lock().drain(..).collect();
        for w in handles {
            let _ = w.join();
        }
    }
}
