//! The sharded runtime: the same StarSs-like API as [`Runtime`], with
//! dependency resolution partitioned over N engines behind per-shard
//! locks.
//!
//! [`Runtime`](crate::Runtime) funnels every `submit`/`finish` through a
//! single `Mutex<DependencyEngine>` — the software re-creation of the
//! centralized Task Maestro, and under many workers the dominant
//! serialization point. [`ShardedRuntime`] replaces that global lock with
//! a [`ShardDispatcher`]: workers finishing tasks lock only the shards
//! whose addresses the task actually touched, disjoint completions retire
//! fully in parallel, and the dispatcher's deferred-finish rings let one
//! lock holder drain a burst of queued completions in a single
//! acquisition. Readiness semantics are identical — the dispatcher
//! composes the same `DependencyEngine` the single-lock runtime uses, and
//! the sharded composition is differentially verified against it and the
//! oracle in `nexuspp-shard`.

use crate::region::{Region, RegionId};
use crate::runtime::{Grants, Job, TaskCtx};
use crossbeam::channel::{unbounded, Receiver, Sender};
use nexuspp_core::NexusConfig;
use nexuspp_shard::{ShardDispatcher, TaskTicket};
use nexuspp_trace::normalize::normalize_params;
use nexuspp_trace::{AccessMode, Param};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Payload delivered when a task becomes ready.
struct Work {
    grants: Grants,
    job: Job,
    high_priority: bool,
}

/// A scheduled unit: the dispatcher ticket plus the work to run.
type Ready = (TaskTicket<Work>, Work);

enum Msg {
    Wake,
    Shutdown,
}

#[derive(Default)]
struct ReadyQueue {
    high: VecDeque<Ready>,
    normal: VecDeque<Ready>,
}

impl ReadyQueue {
    fn push(&mut self, r: Ready) {
        if r.1.high_priority {
            self.high.push_back(r);
        } else {
            self.normal.push_back(r);
        }
    }

    fn pop(&mut self) -> Option<Ready> {
        self.high.pop_front().or_else(|| self.normal.pop_front())
    }
}

struct Inner {
    dispatcher: ShardDispatcher<Work>,
    ready: Mutex<ReadyQueue>,
    tx: Sender<Msg>,
    /// Tag counter; atomic so submissions don't serialize on a lock.
    submitted: AtomicU64,
    /// Tasks spawned and not yet fully retired. This lock pairs with the
    /// `quiescent` condvar, so it cannot be an atomic.
    pending: Mutex<u64>,
    quiescent: Condvar,
    /// First task panic observed (re-raised at the next barrier).
    panicked: Mutex<Option<String>>,
}

impl Inner {
    /// Enqueue a ready unit and wake one worker.
    fn schedule(&self, r: Ready) {
        self.ready.lock().push(r);
        self.tx
            .send(Msg::Wake)
            .expect("worker channel closed while tasks in flight");
    }
}

/// Declarative task builder for the sharded runtime (same surface as
/// [`TaskBuilder`](crate::TaskBuilder)).
pub struct ShardedTaskBuilder<'rt> {
    rt: &'rt ShardedRuntime,
    accesses: Vec<(RegionId, AccessMode)>,
    high_priority: bool,
}

impl<'rt> ShardedTaskBuilder<'rt> {
    /// Declare a read-only parameter.
    pub fn input<T>(mut self, r: &Region<T>) -> Self {
        self.accesses.push((r.id(), AccessMode::In));
        self
    }

    /// Declare a write-only parameter.
    pub fn output<T>(mut self, r: &Region<T>) -> Self {
        self.accesses.push((r.id(), AccessMode::Out));
        self
    }

    /// Declare a read-write parameter.
    pub fn inout<T>(mut self, r: &Region<T>) -> Self {
        self.accesses.push((r.id(), AccessMode::InOut));
        self
    }

    /// Mark the task high priority: once ready, it overtakes queued
    /// normal-priority tasks.
    pub fn high_priority(mut self) -> Self {
        self.high_priority = true;
        self
    }

    /// Submit the task. It runs as soon as its dependencies allow.
    pub fn spawn(self, f: impl FnOnce(&TaskCtx) + Send + 'static) {
        let params: Vec<Param> = self
            .accesses
            .iter()
            .map(|(id, m)| Param::new(id.0, 1, *m))
            .collect();
        let params = normalize_params(&params);
        let grants: Grants = Arc::new(params.iter().map(|p| (RegionId(p.addr), p.mode)).collect());
        let inner = &self.rt.inner;
        {
            let mut p = inner.pending.lock();
            *p += 1;
        }
        let tag = inner.submitted.fetch_add(1, Ordering::Relaxed) + 1;
        let work = Work {
            grants,
            job: Box::new(f),
            high_priority: self.high_priority,
        };
        let res = inner.dispatcher.submit(0, tag, &params, work);
        if let Some(work) = res.ready {
            inner.schedule((res.ticket, work));
        }
        // A parked task's ticket resurfaces in some FinishReport::woken.
    }
}

/// The StarSs-like runtime over sharded, per-shard-locked resolution.
pub struct ShardedRuntime {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl ShardedRuntime {
    /// Start a runtime with `n` worker threads resolving dependencies
    /// across `shards` engines.
    pub fn new(n: usize, shards: usize) -> Self {
        assert!(n >= 1, "need at least one worker");
        let (tx, rx): (Sender<Msg>, Receiver<Msg>) = unbounded();
        let inner = Arc::new(Inner {
            dispatcher: ShardDispatcher::new(shards, &NexusConfig::unbounded()),
            ready: Mutex::new(ReadyQueue::default()),
            tx,
            submitted: AtomicU64::new(0),
            pending: Mutex::new(0),
            quiescent: Condvar::new(),
            panicked: Mutex::new(None),
        });
        let workers = (0..n)
            .map(|i| {
                let rx = rx.clone();
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("nexuspp-shard-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &inner))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        ShardedRuntime { inner, workers }
    }

    /// Number of shards resolution is partitioned over.
    pub fn n_shards(&self) -> usize {
        self.inner.dispatcher.n_shards()
    }

    /// Allocate a data region managed by this runtime.
    pub fn region<T>(&self, data: Vec<T>) -> Region<T> {
        Region::new(data)
    }

    /// Begin declaring a task.
    pub fn task(&self) -> ShardedTaskBuilder<'_> {
        ShardedTaskBuilder {
            rt: self,
            accesses: Vec::new(),
            high_priority: false,
        }
    }

    /// Block until every producer of `region` submitted so far has
    /// finished (see [`Runtime::wait_on`](crate::Runtime::wait_on)).
    pub fn wait_on<T>(&self, region: &Region<T>) {
        let (tx, rx) = crossbeam::channel::bounded::<()>(1);
        self.task().input(region).high_priority().spawn(move |_| {
            let _ = tx.send(());
        });
        rx.recv().expect("wait_on probe vanished");
    }

    /// Wait until every submitted task has finished. Re-raises the first
    /// task panic observed since the last barrier.
    pub fn barrier(&self) {
        let mut p = self.inner.pending.lock();
        while *p > 0 {
            self.inner.quiescent.wait(&mut p);
        }
        drop(p);
        if let Some(msg) = self.inner.panicked.lock().take() {
            panic!("task panicked: {msg}");
        }
    }

    /// Synchronously inspect a region's data (reach quiescence first via
    /// [`barrier`](Self::barrier)).
    pub fn with_data<T, R>(&self, region: &Region<T>, f: impl FnOnce(&[T]) -> R) -> R {
        let guard = region.begin_read();
        f(&guard)
    }

    /// Number of tasks submitted so far.
    pub fn submitted(&self) -> u64 {
        self.inner.submitted.load(Ordering::Relaxed)
    }
}

fn worker_loop(rx: &Receiver<Msg>, inner: &Arc<Inner>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Wake => {
                let (ticket, work) = inner
                    .ready
                    .lock()
                    .pop()
                    .expect("wake token without ready work");
                let ctx = TaskCtx::from_grants(work.grants);
                let result =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (work.job)(&ctx)));
                if let Err(payload) = result {
                    let msg = payload
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "<non-string panic>".into());
                    inner.panicked.lock().get_or_insert(msg);
                }
                // Retire through the sharded dispatcher: only the shards
                // this task touched are locked, and the report may carry
                // wakes/completions drained on behalf of other workers.
                let report = inner.dispatcher.finish(ticket);
                for woken in report.woken {
                    inner.schedule(woken);
                }
                if report.completed > 0 {
                    let mut p = inner.pending.lock();
                    *p -= report.completed;
                    if *p == 0 {
                        inner.quiescent.notify_all();
                    }
                }
            }
            Msg::Shutdown => break,
        }
    }
}

impl Drop for ShardedRuntime {
    fn drop(&mut self) {
        // Drain in-flight work (without re-raising task panics — Drop
        // must not panic), then stop every worker and join it.
        {
            let mut p = self.inner.pending.lock();
            while *p > 0 {
                self.inner.quiescent.wait(&mut p);
            }
        }
        for _ in 0..self.workers.len() {
            let _ = self.inner.tx.send(Msg::Shutdown);
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}
