//! Runtime-level stress drivers shared by the test suites and the bench
//! harness, so the DAG a deadlock test proves and the DAG an experiment
//! measures cannot drift apart.

use crate::region::Region;
use crate::sharded::ShardedRuntime;
use std::time::{Duration, Instant};

/// Drive the capacity-stress DAG shape (the region-level twin of
/// `nexuspp_workloads::CapacityStressSpec`): one root task fans out
/// `chains` serial `inout` chains of length `chain_len`, spawned
/// round-robin across chains by depth so resident demand spans every
/// chain at once — on a bounded runtime the submitter parks over and
/// over, which is exactly the stall/retry hot path.
///
/// Blocks to quiescence, panics if any chain lost or duplicated a task,
/// and returns the wall-clock from first spawn to quiescence.
pub fn drive_capacity_stress(rt: &ShardedRuntime, chains: u32, chain_len: u32) -> Duration {
    let root: Region<u64> = rt.region(vec![0]);
    let cells: Vec<Region<u64>> = (0..chains).map(|_| rt.region(vec![0u64])).collect();
    let t0 = Instant::now();
    {
        let root = root.clone();
        rt.task().output(&root).spawn(move |t| {
            t.write(&root)[0] = 1;
        });
    }
    for depth in 0..chain_len {
        for cell in &cells {
            let cell2 = cell.clone();
            if depth == 0 {
                let root = root.clone();
                rt.task().input(&root).inout(cell).spawn(move |t| {
                    t.write(&cell2)[0] += 1;
                });
            } else {
                rt.task().inout(cell).spawn(move |t| {
                    t.write(&cell2)[0] += 1;
                });
            }
        }
    }
    rt.barrier();
    let elapsed = t0.elapsed();
    for cell in &cells {
        assert_eq!(
            rt.with_data(cell, |v| v[0]),
            chain_len as u64,
            "a chain lost or duplicated tasks"
        );
    }
    elapsed
}
