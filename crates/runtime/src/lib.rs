//! # nexuspp-runtime — a real StarSs-like task dataflow runtime
//!
//! The paper's premise is that StarSs lets a programmer annotate plain
//! function calls with `input`/`output`/`inout` clauses and have the
//! runtime discover the task graph. There is no StarSs toolchain for Rust,
//! so this crate provides the equivalent embedded API — and executes real
//! closures on a thread pool, resolving dependencies with the *same*
//! [`nexuspp_core::DependencyEngine`] the hardware model uses (in its
//! growable software configuration). Semantics are therefore tested once
//! (against the oracle resolver) and shared between the simulator and this
//! runtime.
//!
//! ```
//! use nexuspp_runtime::Runtime;
//!
//! let rt = Runtime::new(4);
//! let a = rt.region(vec![1u64; 8]);
//! let b = rt.region(vec![0u64; 8]);
//! {
//!     let (a, b) = (a.clone(), b.clone());
//!     rt.task()
//!         .input(&a)
//!         .output(&b)
//!         .spawn(move |t| {
//!             let av = t.read(&a);
//!             let mut bv = t.write(&b);
//!             for (x, y) in av.iter().zip(bv.iter_mut()) {
//!                 *y = x * 2;
//!             }
//!         });
//! }
//! rt.barrier(); // like `#pragma css barrier`
//! assert_eq!(rt.with_data(&b, |v| v.to_vec()), vec![2u64; 8]);
//! ```

//!
//! For many workers, [`ShardedRuntime`] offers the same API with
//! dependency resolution partitioned across N engines behind per-shard
//! locks (see [`sharded`]), removing the single global engine lock from
//! every task completion.
//!
//! Both backends hand ready tasks to their workers through the
//! `nexuspp-sched` scheduling layer: per-worker work-stealing deques by
//! default, with the previous global mutex queue selectable via
//! [`SchedulerKind`] (`Runtime::with_scheduler` /
//! `ShardedRuntime::with_scheduler`) for differential comparison.

pub mod region;
pub mod runtime;
pub mod sharded;
pub mod stress;

pub use nexuspp_core::ShardCapacity;
pub use nexuspp_sched::{SchedCounts, SchedulerKind};
pub use nexuspp_shard::{CapacityCounts, WakeCounts, WakeMode};
pub use region::{Region, RegionId};
pub use runtime::{Runtime, ShutdownReport, TaskBuilder, TaskCtx};
pub use sharded::{PendingSpawn, ShardedRuntime, ShardedTaskBuilder};
