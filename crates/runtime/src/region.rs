//! Data regions: the memory segments tasks declare access to.
//!
//! A [`Region<T>`] owns a typed buffer and a unique address used by the
//! dependency engine exactly like a StarSs parameter's base address. Tasks
//! obtain references through [`read`](crate::runtime::TaskCtx::read) /
//! [`write`](crate::runtime::TaskCtx::write) guards that verify — at run
//! time — that the running task actually declared that access, and — in
//! all builds — that the dependency engine never granted conflicting
//! access (a shared reader count / exclusive writer flag per region).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicI32, AtomicU64, Ordering};
use std::sync::Arc;

/// Unique identity of a region: plays the role of the parameter's base
/// memory address in the Dependence Table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u64);

static NEXT_REGION: AtomicU64 = AtomicU64::new(0x1000);

pub(crate) struct RegionCell<T> {
    pub(crate) id: RegionId,
    data: UnsafeCell<Box<[T]>>,
    /// Element count (immutable: regions never reallocate).
    len: usize,
    /// Concurrency checker: >0 = active readers, −1 = active writer.
    access: AtomicI32,
}

// Safety: the dependency engine serializes writers against everything;
// the `access` counter asserts that property at run time.
unsafe impl<T: Send> Send for RegionCell<T> {}
unsafe impl<T: Send + Sync> Sync for RegionCell<T> {}

/// A shared handle to a typed data region.
pub struct Region<T> {
    pub(crate) cell: Arc<RegionCell<T>>,
}

impl<T> Clone for Region<T> {
    fn clone(&self) -> Self {
        Region {
            cell: Arc::clone(&self.cell),
        }
    }
}

impl<T> std::fmt::Debug for Region<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Region({:#x}, len {})", self.id().0, self.len())
    }
}

impl<T> Region<T> {
    /// Create a region from owned data. (Usually via
    /// [`Runtime::region`](crate::runtime::Runtime::region).)
    pub fn new(data: Vec<T>) -> Self {
        // Region ids are spaced so they behave like distinct base
        // addresses under the engine's hash.
        let id = RegionId(NEXT_REGION.fetch_add(64, Ordering::Relaxed));
        let len = data.len();
        Region {
            cell: Arc::new(RegionCell {
                id,
                data: UnsafeCell::new(data.into_boxed_slice()),
                len,
                access: AtomicI32::new(0),
            }),
        }
    }

    /// The region's dependency-resolution identity.
    pub fn id(&self) -> RegionId {
        self.cell.id
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.cell.len
    }

    /// True if the region holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn begin_read(&self) -> ReadGuard<'_, T> {
        // CAS loop so a rejected acquisition leaves the counter untouched
        // (the panic unwinds through other guards' Drops).
        let mut cur = self.cell.access.load(Ordering::Acquire);
        loop {
            assert!(
                cur >= 0,
                "dependency violation: reader admitted while a writer is active"
            );
            match self.cell.access.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return ReadGuard { region: self },
                Err(actual) => cur = actual,
            }
        }
    }

    pub(crate) fn begin_write(&self) -> WriteGuard<'_, T> {
        let swapped = self
            .cell
            .access
            .compare_exchange(0, -1, Ordering::AcqRel, Ordering::Acquire);
        assert!(
            swapped.is_ok(),
            "dependency violation: writer admitted while region is in use"
        );
        WriteGuard { region: self }
    }
}

/// Shared read access to a region's data for the duration of a task.
pub struct ReadGuard<'a, T> {
    region: &'a Region<T>,
}

impl<T> std::ops::Deref for ReadGuard<'_, T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        // Safety: `access` ≥ 1 (no writer); the engine guarantees no
        // writer task runs concurrently.
        unsafe { &*self.region.cell.data.get() }
    }
}

impl<T> Drop for ReadGuard<'_, T> {
    fn drop(&mut self) {
        self.region.cell.access.fetch_sub(1, Ordering::Release);
    }
}

/// Exclusive write access to a region's data for the duration of a task.
pub struct WriteGuard<'a, T> {
    region: &'a Region<T>,
}

impl<T> std::ops::Deref for WriteGuard<'_, T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        unsafe { &*self.region.cell.data.get() }
    }
}

impl<T> std::ops::DerefMut for WriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut [T] {
        // Safety: `access` == −1: we are the only accessor.
        unsafe { &mut *self.region.cell.data.get() }
    }
}

impl<T> Drop for WriteGuard<'_, T> {
    fn drop(&mut self) {
        let prev = self.region.cell.access.swap(0, Ordering::Release);
        debug_assert_eq!(prev, -1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_have_distinct_ids() {
        let a = Region::new(vec![0u8; 4]);
        let b = Region::new(vec![0u8; 4]);
        assert_ne!(a.id(), b.id());
        assert_eq!(a.len(), 4);
        assert!(!a.is_empty());
    }

    #[test]
    fn read_guards_share() {
        let a = Region::new(vec![7u32; 3]);
        let g1 = a.begin_read();
        let g2 = a.begin_read();
        assert_eq!(g1[0], 7);
        assert_eq!(g2[2], 7);
        drop(g1);
        drop(g2);
        let mut w = a.begin_write();
        w[0] = 9;
        drop(w);
        let g = a.begin_read();
        assert_eq!(g[0], 9);
    }

    #[test]
    #[should_panic(expected = "dependency violation")]
    fn write_while_read_panics() {
        let a = Region::new(vec![0u8; 1]);
        let _r = a.begin_read();
        let _w = a.begin_write();
    }

    #[test]
    #[should_panic(expected = "dependency violation")]
    fn read_while_write_panics() {
        let a = Region::new(vec![0u8; 1]);
        let _w = a.begin_write();
        let _r = a.begin_read();
    }

    #[test]
    fn clone_shares_storage() {
        let a = Region::new(vec![1u64, 2, 3]);
        let b = a.clone();
        {
            let mut w = a.begin_write();
            w[1] = 99;
        }
        let r = b.begin_read();
        assert_eq!(&*r, &[1, 99, 3]);
    }
}
