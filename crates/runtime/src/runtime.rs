//! The task runtime: thread pool + Nexus++ dependency engine.
//!
//! Submission mirrors the paper's master core: the submitting thread
//! admits the task into the (growable, software) engine and checks its
//! dependencies; ready tasks go to the scheduler, dependent ones park
//! until a completion wakes them — the software analogue of the Kick-Off
//! List wake-up performed by `Handle Finished`.
//!
//! Ready tasks are handed to workers through a
//! [`nexuspp_sched::Scheduler`]: per-worker work-stealing deques by
//! default (a worker that completes a task keeps the tasks it woke on its
//! own deque and idle workers steal), with the previous global
//! mutex-queue + wake-token scheme selectable via
//! [`SchedulerKind::MutexQueue`] for differential comparison.

use crate::region::{ReadGuard, Region, RegionId, WriteGuard};
use crossbeam::channel::{RecvTimeoutError, TryRecvError};
use nexuspp_core::pool::TdIndex;
use nexuspp_core::{DependencyEngine, NexusConfig, Priority};
use nexuspp_obs::{EventKind, MetricsRegistry, Recorder, NO_SHARD};
use nexuspp_sched::{SchedCounts, Scheduler, SchedulerKind, WorkerHandle};
use nexuspp_trace::normalize::normalize_params;
use nexuspp_trace::{AccessMode, Param};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

pub(crate) type Job = Box<dyn FnOnce(&TaskCtx) + Send + 'static>;
/// Access grants attached to a task (region, declared mode).
pub(crate) type Grants = Arc<Vec<(RegionId, AccessMode)>>;

struct Work {
    td: TdIndex,
    /// Caller-visible task identity carried through the scheduler so
    /// exec-phase lifecycle events name the task, not its pool slot.
    tag: u64,
    grants: Grants,
    job: Job,
    prio: Priority,
}

struct RtState {
    engine: DependencyEngine,
    parked: HashMap<u32, Work>,
    submitted: u64,
}

/// What an explicit [`Runtime::shutdown`]/
/// [`ShardedRuntime::shutdown`](crate::ShardedRuntime::shutdown) hands
/// back: whether the drain stayed graceful, and the executed/cancelled
/// split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShutdownReport {
    /// `true` if every task ran to completion within the deadline;
    /// `false` if the hard-deadline abort path cancel-finished queued
    /// tasks.
    pub graceful: bool,
    /// Tasks whose bodies ran (including panicking ones).
    pub executed: u64,
    /// Tasks cancel-finished without running (abort path only).
    pub cancelled: u64,
}

struct Inner {
    state: Mutex<RtState>,
    sched: Scheduler<Work>,
    pending: Mutex<u64>,
    quiescent: Condvar,
    /// First task panic observed (re-raised at the next barrier).
    panicked: Mutex<Option<String>>,
    /// Hard-deadline shutdown flag: once set, ready tasks cancel-finish
    /// (bodies dropped unexecuted, still retired in the engine).
    aborting: AtomicBool,
    /// Tasks whose bodies ran (including panicking ones).
    executed: AtomicU64,
    /// Tasks cancel-finished by a hard-deadline shutdown.
    cancelled: AtomicU64,
    /// Lifecycle-event recorder; `None` when the runtime was built
    /// without one (zero recording overhead on every hot path).
    obs: Option<Arc<Recorder>>,
}

impl Inner {
    #[inline]
    fn emit(&self, kind: EventKind, task: u64) {
        if let Some(r) = &self.obs {
            r.emit(kind, task, NO_SHARD);
        }
    }

    #[inline]
    fn emit_edge(&self, kind: EventKind, task: u64, aux: u64) {
        if let Some(r) = &self.obs {
            r.emit_edge(kind, task, aux, NO_SHARD);
        }
    }

    /// Retire `td` in the engine and deliver the whole wake set as one
    /// batched scheduling operation from worker `h` (or the external
    /// path for scheduler-aware waiters, `h == None`). `tag` is the
    /// finishing task's identity for the event stream.
    fn task_finished(&self, h: Option<&WorkerHandle<Work>>, td: TdIndex, tag: u64) {
        let woken: Vec<(Work, Priority)> = {
            let mut st = self.state.lock();
            let fin = st.engine.finish(td);
            let woken: Vec<(Work, Priority)> = fin
                .newly_ready
                .into_iter()
                .map(|ready| {
                    let work = st
                        .parked
                        .remove(&ready.0)
                        .expect("woken task must be parked");
                    let prio = work.prio;
                    (work, prio)
                })
                .collect();
            // Emit under the state lock: any later submit/finish holds
            // the same lock, so these events are seq-ordered before
            // everything that observes the wake.
            self.emit(EventKind::Finished, tag);
            for (work, _) in &woken {
                self.emit_edge(EventKind::Ready, work.tag, tag);
                self.emit_edge(EventKind::WakePosted, work.tag, tag);
            }
            woken
        };
        for (work, _) in &woken {
            self.emit(EventKind::WakeDelivered, work.tag);
        }
        match h {
            Some(h) => self.sched.wake_batch(h, woken),
            None => self.sched.wake_batch_external(woken),
        }
        let mut p = self.pending.lock();
        *p -= 1;
        if *p == 0 {
            self.quiescent.notify_all();
        }
    }
}

/// Render a caught task-panic payload for barrier re-raising.
pub(crate) fn panic_msg(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "<non-string panic>".into())
}

/// Execution context handed to every task closure. Grants access to the
/// regions the task declared, in the declared modes.
pub struct TaskCtx {
    grants: Grants,
}

impl TaskCtx {
    pub(crate) fn from_grants(grants: Grants) -> TaskCtx {
        TaskCtx { grants }
    }

    fn mode_of(&self, id: RegionId) -> Option<AccessMode> {
        self.grants.iter().find(|(g, _)| *g == id).map(|(_, m)| *m)
    }

    /// Read a region declared `input` (or `inout`).
    pub fn read<'r, T>(&self, region: &'r Region<T>) -> ReadGuard<'r, T> {
        match self.mode_of(region.id()) {
            Some(m) if m.reads() => region.begin_read(),
            Some(_) => panic!("region {:?} declared write-only; use write()", region.id()),
            None => panic!("undeclared access to region {:?}", region.id()),
        }
    }

    /// Write a region declared `output` or `inout`.
    pub fn write<'r, T>(&self, region: &'r Region<T>) -> WriteGuard<'r, T> {
        match self.mode_of(region.id()) {
            Some(m) if m.writes() => region.begin_write(),
            Some(_) => panic!("region {:?} declared read-only; use read()", region.id()),
            None => panic!("undeclared access to region {:?}", region.id()),
        }
    }
}

/// Declarative task builder (the embedded-DSL equivalent of a
/// `#pragma css task input(...) output(...) inout(...)` annotation).
pub struct TaskBuilder<'rt> {
    rt: &'rt Runtime,
    accesses: Vec<(RegionId, AccessMode)>,
    high_priority: bool,
}

impl<'rt> TaskBuilder<'rt> {
    /// Declare a read-only parameter.
    pub fn input<T>(mut self, r: &Region<T>) -> Self {
        self.accesses.push((r.id(), AccessMode::In));
        self
    }

    /// Declare a write-only parameter.
    pub fn output<T>(mut self, r: &Region<T>) -> Self {
        self.accesses.push((r.id(), AccessMode::Out));
        self
    }

    /// Declare a read-write parameter.
    pub fn inout<T>(mut self, r: &Region<T>) -> Self {
        self.accesses.push((r.id(), AccessMode::InOut));
        self
    }

    /// Mark the task high priority (the StarSs `highpriority` clause):
    /// once ready, it overtakes queued normal-priority tasks.
    pub fn high_priority(mut self) -> Self {
        self.high_priority = true;
        self
    }

    /// Submit the task. It runs as soon as its dependencies allow.
    pub fn spawn(self, f: impl FnOnce(&TaskCtx) + Send + 'static) {
        let params: Vec<Param> = self
            .accesses
            .iter()
            .map(|(id, m)| Param::new(id.0, 1, *m))
            .collect();
        let params = normalize_params(&params);
        // Grants mirror the normalized (merged-mode) parameter list.
        let grants: Grants = Arc::new(params.iter().map(|p| (RegionId(p.addr), p.mode)).collect());
        let inner = &self.rt.inner;
        {
            let mut p = inner.pending.lock();
            *p += 1;
        }
        let prio = Priority::from_high_flag(self.high_priority);
        let mut st = inner.state.lock();
        st.submitted += 1;
        let tag = st.submitted;
        inner.emit(EventKind::Submitted, tag);
        inner.emit(EventKind::DepCheckStart, tag);
        let (td, ready) = st
            .engine
            .submit(0, tag, params)
            .expect("growable engine cannot reject");
        // Emitted under the state lock: a finisher that will wake this
        // task must acquire the same lock first, so its `Ready` event is
        // seq-ordered after this one.
        inner.emit(EventKind::DepCheckDone, tag);
        let work = Work {
            td,
            tag,
            grants,
            job: Box::new(f),
            prio,
        };
        if ready {
            inner.emit(EventKind::Ready, tag);
            drop(st);
            inner.sched.submit(work, prio);
        } else {
            st.parked.insert(td.0, work);
        }
    }
}

/// The StarSs-like task dataflow runtime.
pub struct Runtime {
    inner: Arc<Inner>,
    /// Behind a mutex so [`shutdown`](Self::shutdown) can join through
    /// `&self` (services share the runtime in an `Arc`).
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Runtime {
    /// Start a runtime with `n` worker threads and the default
    /// (work-stealing) scheduler.
    pub fn new(n: usize) -> Self {
        Runtime::with_scheduler(n, SchedulerKind::default())
    }

    /// Start a runtime with `n` worker threads scheduling ready tasks
    /// through `kind`.
    pub fn with_scheduler(n: usize, kind: SchedulerKind) -> Self {
        Runtime::build(n, kind, None)
    }

    /// Start a runtime that records lifecycle events into `rec`. Every
    /// submit/wake/exec transition is stamped into the recorder's
    /// per-thread rings; drain with [`nexuspp_obs::Recorder::drain`]
    /// after a [`barrier`](Self::barrier) for a causally ordered stream.
    pub fn with_recorder(n: usize, kind: SchedulerKind, rec: Arc<Recorder>) -> Self {
        Runtime::build(n, kind, Some(rec))
    }

    /// Start a runtime observed *online* by `collector`
    /// ([`nexuspp_obs::Collector`]): lifecycle events stream into the
    /// collector's recorder (its background thread keeps a live
    /// [`nexuspp_obs::GraphTracker`] current while tasks are in
    /// flight), and this runtime's [`metrics`](Self::metrics) registry
    /// is attached for periodic sampling. Producers never block on the
    /// collector — it only ever drains the consumer side of the event
    /// rings. Call [`Collector::finish`](nexuspp_obs::Collector::finish)
    /// after the runtime joins for the complete final state.
    pub fn with_observer(
        n: usize,
        kind: SchedulerKind,
        collector: &nexuspp_obs::Collector,
    ) -> Self {
        let rt = Runtime::build(n, kind, Some(collector.recorder()));
        collector.attach_registry(Arc::new(rt.metrics()));
        rt
    }

    fn build(n: usize, kind: SchedulerKind, obs: Option<Arc<Recorder>>) -> Self {
        // n == 0 is allowed: no worker threads are spawned and every
        // task executes inside a scheduler-aware waiter (`wait_on`).
        let (mut sched, handles) = Scheduler::new(kind, n);
        if let Some(rec) = &obs {
            sched.set_recorder(Arc::clone(rec), |w: &Work| w.tag);
        }
        let inner = Arc::new(Inner {
            state: Mutex::new(RtState {
                engine: DependencyEngine::new(&NexusConfig::unbounded()),
                parked: HashMap::new(),
                submitted: 0,
            }),
            sched,
            pending: Mutex::new(0),
            quiescent: Condvar::new(),
            panicked: Mutex::new(None),
            aborting: AtomicBool::new(false),
            executed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            obs,
        });
        let workers = handles
            .into_iter()
            .map(|h| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("nexuspp-worker-{}", h.id()))
                    .spawn(move || worker_loop(&inner, &h))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        Runtime {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// Which ready-task scheduler this runtime drives.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        self.inner.sched.kind()
    }

    /// Scheduler activity counters (steals, parks, …; exact once
    /// quiescent — call after [`barrier`](Self::barrier)).
    pub fn sched_counts(&self) -> SchedCounts {
        self.inner.sched.counts()
    }

    /// The lifecycle-event recorder this runtime stamps into, if built
    /// with [`with_recorder`](Self::with_recorder).
    pub fn recorder(&self) -> Option<&Arc<Recorder>> {
        self.inner.obs.as_ref()
    }

    /// Build a [`MetricsRegistry`] over every counter surface this
    /// runtime exposes: task accounting (`tasks`), scheduler activity
    /// (`sched`) and — when a recorder is attached — event-ring
    /// accounting (`events`). Snapshots are exact at quiescence.
    pub fn metrics(&self) -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        let inner = Arc::clone(&self.inner);
        reg.register("tasks", move || {
            vec![
                ("submitted".into(), inner.state.lock().submitted),
                ("pending".into(), *inner.pending.lock()),
                ("executed".into(), inner.executed.load(Ordering::Relaxed)),
                ("cancelled".into(), inner.cancelled.load(Ordering::Relaxed)),
            ]
        });
        let inner = Arc::clone(&self.inner);
        reg.register("sched", move || sched_counters(&inner.sched.counts()));
        if let Some(rec) = &self.inner.obs {
            let rec = Arc::clone(rec);
            reg.register("events", move || {
                vec![
                    ("recorded".into(), rec.recorded()),
                    ("dropped".into(), rec.dropped()),
                ]
            });
        }
        reg
    }

    /// Allocate a data region managed by this runtime.
    pub fn region<T>(&self, data: Vec<T>) -> Region<T> {
        Region::new(data)
    }

    /// Begin declaring a task.
    pub fn task(&self) -> TaskBuilder<'_> {
        TaskBuilder {
            rt: self,
            accesses: Vec::new(),
            high_priority: false,
        }
    }

    /// Block until every producer of `region` submitted so far has
    /// finished — the StarSs `#pragma css wait on(...)` primitive.
    /// Implemented as a high-priority probe task reading the region;
    /// dependency resolution makes it wait for exactly the outstanding
    /// writers (concurrent readers do not delay it).
    ///
    /// Must be called from outside task context (calling it from within a
    /// task can deadlock if all workers block on waits).
    ///
    /// The waiter is scheduler-aware: instead of blocking on a channel
    /// (starving the pool of one thread), it pops/steals ready tasks
    /// and executes them until its probe completes — a graph completes
    /// even at `workers == 0` with a single waiter. If the runtime is
    /// torn down (hard-deadline shutdown cancels the probe), the wait
    /// returns cleanly instead of panicking.
    pub fn wait_on<T>(&self, region: &Region<T>) {
        let (tx, rx) = crossbeam::channel::bounded::<()>(1);
        self.task().input(region).high_priority().spawn(move |_| {
            let _ = tx.send(());
        });
        loop {
            match rx.try_recv() {
                Ok(()) => return,
                // Probe dropped unexecuted: the runtime is aborting; its
                // producers will never run, so there is nothing to wait
                // for.
                Err(TryRecvError::Disconnected) => return,
                Err(TryRecvError::Empty) => {}
            }
            if let Some(work) = self.inner.sched.try_next_external() {
                execute_work(&self.inner, work, None);
            } else {
                match rx.recv_timeout(Duration::from_millis(1)) {
                    Ok(()) | Err(RecvTimeoutError::Disconnected) => return,
                    Err(RecvTimeoutError::Timeout) => {}
                }
            }
        }
    }

    /// Graceful explicit shutdown: drain every in-flight task, then stop
    /// and join the workers. Equivalent to `drop` but hands back a
    /// [`ShutdownReport`] and is callable through a shared reference.
    /// Does not re-raise task panics. Submitting after shutdown is a
    /// caller error (tasks would queue forever).
    pub fn shutdown(&self) -> ShutdownReport {
        self.shutdown_inner(None)
    }

    /// Shutdown with a hard deadline: wait up to `deadline` for a
    /// graceful drain; past it, every still-queued task cancel-finishes
    /// (body dropped unexecuted, retired in the engine so dependents
    /// drain). Bodies already running are never interrupted.
    pub fn shutdown_deadline(&self, deadline: Duration) -> ShutdownReport {
        self.shutdown_inner(Some(deadline))
    }

    fn shutdown_inner(&self, deadline: Option<Duration>) -> ShutdownReport {
        let mut graceful = true;
        {
            let mut p = self.inner.pending.lock();
            match deadline {
                None => {
                    while *p > 0 {
                        self.inner.quiescent.wait(&mut p);
                    }
                }
                Some(d) => {
                    let start = Instant::now();
                    while *p > 0 {
                        match d.checked_sub(start.elapsed()) {
                            Some(left) if !left.is_zero() => {
                                let _ = self.inner.quiescent.wait_for(&mut p, left);
                            }
                            _ => {
                                graceful = false;
                                break;
                            }
                        }
                    }
                }
            }
        }
        if !graceful {
            self.inner.aborting.store(true, Ordering::SeqCst);
            let mut p = self.inner.pending.lock();
            while *p > 0 {
                self.inner.quiescent.wait(&mut p);
            }
        }
        self.inner.sched.shutdown();
        let handles: Vec<JoinHandle<()>> = self.workers.lock().drain(..).collect();
        for w in handles {
            let _ = w.join();
        }
        ShutdownReport {
            graceful,
            executed: self.inner.executed.load(Ordering::Relaxed),
            cancelled: self.inner.cancelled.load(Ordering::Relaxed),
        }
    }

    /// Wait until every submitted task has finished — the equivalent of
    /// `#pragma css barrier`. If any task panicked since the last
    /// barrier, the panic is re-raised here on the calling thread.
    pub fn barrier(&self) {
        let mut p = self.inner.pending.lock();
        while *p > 0 {
            self.inner.quiescent.wait(&mut p);
        }
        drop(p);
        if let Some(msg) = self.inner.panicked.lock().take() {
            panic!("task panicked: {msg}");
        }
    }

    /// Synchronously inspect a region's data (callers should reach
    /// quiescence first via [`barrier`](Self::barrier); concurrent writers
    /// are caught by the region's access checker).
    pub fn with_data<T, R>(&self, region: &Region<T>, f: impl FnOnce(&[T]) -> R) -> R {
        let guard = region.begin_read();
        f(&guard)
    }

    /// Number of tasks submitted so far.
    pub fn submitted(&self) -> u64 {
        self.inner.state.lock().submitted
    }
}

/// Flatten a [`SchedCounts`] snapshot into registry rows (shared with
/// the sharded runtime's registry).
pub(crate) fn sched_counters(c: &SchedCounts) -> Vec<(String, u64)> {
    vec![
        ("submitted".into(), c.submitted),
        ("local_pushes".into(), c.local_pushes),
        ("local_pops".into(), c.local_pops),
        ("injector_pops".into(), c.injector_pops),
        ("high_pops".into(), c.high_pops),
        ("steals".into(), c.steals),
        ("parks".into(), c.parks),
        ("unparks".into(), c.unparks),
        ("wake_batches".into(), c.wake_batches),
        ("dispatched".into(), c.dispatched()),
    ]
}

fn worker_loop(inner: &Arc<Inner>, h: &WorkerHandle<Work>) {
    Recorder::set_thread_worker(h.id() as u32);
    while let Some(work) = inner.sched.next(h) {
        execute_work(inner, work, Some(h));
    }
}

/// Run (or, when aborting, cancel) one ready task and retire it. Shared
/// by the worker loop and scheduler-aware waiters (`h == None` — wakes
/// then go through the external scheduling path).
fn execute_work(inner: &Arc<Inner>, work: Work, h: Option<&WorkerHandle<Work>>) {
    let tag = work.tag;
    let td = work.td;
    if inner.aborting.load(Ordering::SeqCst) {
        // Hard-deadline shutdown: drop the body unexecuted (releasing
        // its captures) but still retire the task so the graph drains.
        drop(work.job);
        inner.cancelled.fetch_add(1, Ordering::Relaxed);
    } else {
        let ctx = TaskCtx {
            grants: work.grants,
        };
        inner.emit(EventKind::ExecStart, tag);
        // Keep the runtime's bookkeeping sound even when a task panics:
        // record the payload, finish the task, re-raise at the next
        // barrier.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (work.job)(&ctx)));
        if let Err(payload) = result {
            inner.panicked.lock().get_or_insert(panic_msg(&*payload));
        }
        inner.emit(EventKind::ExecDone, tag);
        inner.executed.fetch_add(1, Ordering::Relaxed);
    }
    inner.task_finished(h, td, tag);
}

impl Drop for Runtime {
    fn drop(&mut self) {
        // Drain in-flight work (without re-raising task panics — Drop
        // must not panic), then stop every worker and join it. A no-op
        // beyond the scheduler flag if an explicit shutdown already ran.
        {
            let mut p = self.inner.pending.lock();
            while *p > 0 {
                self.inner.quiescent.wait(&mut p);
            }
        }
        self.inner.sched.shutdown();
        let handles: Vec<JoinHandle<()>> = self.workers.lock().drain(..).collect();
        for w in handles {
            let _ = w.join();
        }
    }
}
