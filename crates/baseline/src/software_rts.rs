//! The software StarSs runtime bottleneck model.
//!
//! "Previous work \[10\] has shown, however, that the StarSs RTS, when
//! implemented in software, can be a bottleneck that limits the
//! scalability of applications parallelized using StarSs. Roughly
//! speaking, the RTS cannot compute task dependencies and attend to
//! finished tasks fast enough to keep all worker cores busy."
//!
//! The model: one master core runs the runtime. Every submission costs
//! `submit_base + per_param × n` and every completion costs
//! `finish_base + per_param × n`, all serialized on the master (software
//! hash tables, no hardware concurrency). Workers execute tasks
//! (read + exec + write, uncontended) and are otherwise free. The
//! defaults are fitted so that the H.264 workload saturates around the
//! 4–5× speedup the Nexus work reports for a software runtime at 16
//! cores, giving the motivating curve Nexus and Nexus++ improve on.

use nexuspp_core::engine::CheckProgress;
use nexuspp_core::pool::TdIndex;
use nexuspp_core::{DependencyEngine, NexusConfig};
use nexuspp_desim::{Scheduler, SimTime};
use nexuspp_hw::MemoryConfig;
use nexuspp_trace::{MemCost, TaskRecord, TraceSource};
use std::collections::VecDeque;

/// Software runtime cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoftwareRtsConfig {
    /// Fixed master-side cost per task submission.
    pub submit_base: SimTime,
    /// Fixed master-side cost per task completion.
    pub finish_base: SimTime,
    /// Additional master-side cost per parameter (hashing, list surgery).
    pub per_param: SimTime,
    /// Tasks the runtime keeps in flight (software task window).
    pub window: usize,
}

impl Default for SoftwareRtsConfig {
    fn default() -> Self {
        SoftwareRtsConfig {
            submit_base: SimTime::from_ns(1500),
            finish_base: SimTime::from_ns(1500),
            per_param: SimTime::from_ns(300),
            window: 1024,
        }
    }
}

#[derive(Debug)]
enum Ev {
    /// Master finished its current runtime operation.
    MasterDone,
    /// A worker finished its task.
    WorkerDone(TdIndex),
}

#[derive(Debug)]
enum MasterOp {
    Submit(TaskRecord),
    Finish(TdIndex),
}

fn mem_time(cost: MemCost, mem: &MemoryConfig) -> SimTime {
    match cost {
        MemCost::None => SimTime::ZERO,
        MemCost::Time(t) => t,
        MemCost::Bytes(b) => mem.transfer_time(b),
    }
}

/// Simulate `source` on `workers` cores under the software runtime.
/// Returns the makespan.
pub fn simulate_software_rts(
    source: &mut dyn TraceSource,
    workers: usize,
    cfg: &SoftwareRtsConfig,
    mem: &MemoryConfig,
) -> SimTime {
    assert!(workers >= 1);
    let mut engine = DependencyEngine::new(&NexusConfig::unbounded());
    let mut sched: Scheduler<Ev> = Scheduler::new();
    let mut durations: Vec<SimTime> = Vec::new();

    let mut ready: VecDeque<TdIndex> = VecDeque::new();
    // Completions waiting for the master's attention.
    let mut finish_q: VecDeque<TdIndex> = VecDeque::new();
    // The operation the master is currently performing.
    let mut current: Option<MasterOp> = None;
    let mut free_workers = workers;
    let mut source_done = false;
    let mut in_flight = 0usize;
    let mut makespan = SimTime::ZERO;

    // Start the next master operation if idle: completions take priority
    // (they unblock workers), then submission while the window has room.
    #[allow(clippy::too_many_arguments)] // internal helper mirroring the sim state
    fn kick_master(
        current: &mut Option<MasterOp>,
        finish_q: &mut VecDeque<TdIndex>,
        source: &mut dyn TraceSource,
        source_done: &mut bool,
        in_flight: usize,
        cfg: &SoftwareRtsConfig,
        engine: &DependencyEngine,
        sched: &mut Scheduler<Ev>,
    ) {
        if current.is_some() {
            return;
        }
        if let Some(td) = finish_q.pop_front() {
            let n = engine.pool().get(td).params.len() as u64;
            sched.schedule(cfg.finish_base + cfg.per_param * n, Ev::MasterDone);
            *current = Some(MasterOp::Finish(td));
            return;
        }
        if !*source_done && in_flight < cfg.window {
            match source.next_task() {
                Some(rec) => {
                    let n = rec.params.len() as u64;
                    sched.schedule(cfg.submit_base + cfg.per_param * n, Ev::MasterDone);
                    *current = Some(MasterOp::Submit(rec));
                }
                None => *source_done = true,
            }
        }
    }

    kick_master(
        &mut current,
        &mut finish_q,
        source,
        &mut source_done,
        in_flight,
        cfg,
        &engine,
        &mut sched,
    );
    while let Some((t, ev)) = sched.pop() {
        match ev {
            Ev::MasterDone => match current.take().expect("master done without op") {
                MasterOp::Submit(rec) => {
                    in_flight += 1;
                    let dur = mem_time(rec.read, mem) + rec.exec + mem_time(rec.write, mem);
                    let (td, _) = engine
                        .admit(rec.fptr, rec.id, rec.params)
                        .expect("growable engine cannot reject");
                    if td.0 as usize >= durations.len() {
                        durations.resize(td.0 as usize + 1, SimTime::ZERO);
                    }
                    durations[td.0 as usize] = dur;
                    let is_ready = match engine.check(td) {
                        CheckProgress::Done { ready, .. } => ready,
                        CheckProgress::Stalled { .. } => unreachable!("growable"),
                    };
                    if is_ready {
                        ready.push_back(td);
                    }
                }
                MasterOp::Finish(td) => {
                    in_flight -= 1;
                    let fin = engine.finish(td);
                    ready.extend(fin.newly_ready);
                    makespan = t;
                }
            },
            Ev::WorkerDone(td) => {
                free_workers += 1;
                makespan = t;
                finish_q.push_back(td);
            }
        }
        // Dispatch ready tasks to free workers.
        while free_workers > 0 {
            match ready.pop_front() {
                Some(td) => {
                    free_workers -= 1;
                    sched.schedule(durations[td.0 as usize], Ev::WorkerDone(td));
                }
                None => break,
            }
        }
        kick_master(
            &mut current,
            &mut finish_q,
            source,
            &mut source_done,
            in_flight,
            cfg,
            &engine,
            &mut sched,
        );
    }
    assert_eq!(engine.in_flight(), 0, "software RTS left tasks unfinished");
    makespan
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexuspp_workloads::{GridPattern, GridSpec};

    #[test]
    fn rts_overhead_caps_scalability() {
        let g = GridSpec::default();
        let tr = g.generate(GridPattern::Independent);
        let cfg = SoftwareRtsConfig::default();
        let mem = MemoryConfig::default();
        let mut s1 = tr.clone().into_source();
        let m1 = simulate_software_rts(&mut s1, 1, &cfg, &mem);
        let mut s16 = tr.clone().into_source();
        let m16 = simulate_software_rts(&mut s16, 16, &cfg, &mem);
        let mut s64 = tr.clone().into_source();
        let m64 = simulate_software_rts(&mut s64, 64, &cfg, &mem);
        let s_16 = m1 / m16;
        let s_64 = m1 / m64;
        // The software RTS saturates early: 16 → 64 cores buys almost
        // nothing, and absolute speedup stays in single digits.
        assert!(s_16 < 8.0, "16-core speedup too high: {s_16}");
        assert!(
            s_64 < s_16 * 1.3,
            "adding cores must not help much: {s_16} → {s_64}"
        );
    }

    #[test]
    fn single_worker_close_to_serial_sum() {
        let g = GridSpec::small(6, 6);
        let tr = g.generate(GridPattern::Independent);
        let stats = tr.stats();
        let serial: SimTime = stats.total_exec + stats.total_read_time + stats.total_write_time;
        let mut s = tr.clone().into_source();
        let m = simulate_software_rts(
            &mut s,
            1,
            &SoftwareRtsConfig::default(),
            &MemoryConfig::default(),
        );
        assert!(m >= serial, "makespan must cover all work");
        assert!(
            m < serial * 2,
            "overhead should not dominate 19 µs tasks: {m} vs {serial}"
        );
    }

    #[test]
    fn deterministic() {
        let tr = GridSpec::small(8, 8).generate(GridPattern::Wavefront);
        let mut a = tr.clone().into_source();
        let mut b = tr.clone().into_source();
        let cfg = SoftwareRtsConfig::default();
        let mem = MemoryConfig::default();
        assert_eq!(
            simulate_software_rts(&mut a, 7, &cfg, &mem),
            simulate_software_rts(&mut b, 7, &cfg, &mem)
        );
    }
}
