//! # nexuspp-baseline — comparison systems
//!
//! Nexus++ is motivated by the limitations of two prior systems, both of
//! which are modeled here:
//!
//! * [`classic`] — the original **Nexus** (Meenderinck & Juurlink, DSD
//!   2010): hash-table-based hardware task management with a *fixed* limit
//!   on parameters per task (5) and a *fixed* Kick-Off List with no dummy-
//!   entry extension, plus a 3-table design that performs more lookups per
//!   operation. The model classifies workloads as supported/unsupported
//!   (Gaussian elimination is the paper's flagship unsupported case) and
//!   counts the extra lookups Nexus++ §III-B claims to save.
//! * [`software_rts`] — the **software StarSs runtime** whose bottleneck
//!   motivates hardware task management in the first place ("the RTS
//!   cannot compute task dependencies and attend to finished tasks fast
//!   enough to keep all worker cores busy"): every submission and
//!   completion is serialized on the master core at software cost.
//! * [`ideal`] — a zero-overhead list scheduler: the upper bound any task
//!   manager can approach for a given task graph and core count.

pub mod classic;
pub mod ideal;
pub mod software_rts;

pub use classic::{classic_check, ClassicLimits, ClassicVerdict};
pub use ideal::ideal_makespan;
pub use software_rts::{simulate_software_rts, SoftwareRtsConfig};
