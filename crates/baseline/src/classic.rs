//! The original Nexus, as a feasibility and cost model.
//!
//! From the paper's §I: "since the hash table entries have a fixed size,
//! the number of inputs and outputs of each task is limited (up to 5 in
//! \[10\], \[9\]). Similarly, the number of tasks that can depend on a certain
//! data segment is limited. This limits the applicability of Nexus, i.e.,
//! not all StarSs applications can be executed on a multicore system with
//! Nexus." And §III-B: "Dependency resolution in Nexus++ is more
//! efficient than that in Nexus, since we use fewer and simpler tables and
//! Kick-Off Lists. Nexus++ has only one table to maintain the task graph
//! […] In Nexus, on the other hand, three tables (containing two Kick-Off
//! Lists) are used and are accessed always for all kinds of scenarios."
//!
//! [`classic_check`] replays a workload through the Nexus++ engine (whose
//! statistics tell us exactly where capacity virtualization was needed)
//! and classifies it for classic Nexus: any task needing more than
//! `max_params` parameters, or any Kick-Off List needing more than
//! `kickoff_entries` waiters, makes the workload unsupported. It also
//! reports the lookup-count comparison behind the efficiency claim.

use nexuspp_core::engine::CheckProgress;
use nexuspp_core::pool::PoolError;
use nexuspp_core::{DependencyEngine, NexusConfig};
use nexuspp_desim::Rng;
use nexuspp_trace::{Trace, TraceSource};
use std::collections::VecDeque;

/// The published limits of the original Nexus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassicLimits {
    /// Parameters per task ("up to 5 in \[10\], \[9\]").
    pub max_params: usize,
    /// Kick-Off List slots, with no dummy-entry extension.
    pub kickoff_entries: usize,
    /// Tables touched per dependency operation ("three tables … are
    /// accessed always for all kinds of scenarios").
    pub tables_per_op: u64,
}

impl Default for ClassicLimits {
    fn default() -> Self {
        ClassicLimits {
            max_params: 5,
            kickoff_entries: 8,
            tables_per_op: 3,
        }
    }
}

/// Outcome of checking a workload against classic Nexus.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassicVerdict {
    /// Whether classic Nexus can run the workload at all.
    pub supported: bool,
    /// Human-readable reasons for rejection (empty when supported).
    pub reasons: Vec<String>,
    /// Tasks that exceed the parameter limit.
    pub oversized_tasks: u64,
    /// Largest parameter list seen.
    pub max_params_seen: u64,
    /// Largest simultaneous waiter count on one address.
    pub max_waiters_seen: u64,
    /// Estimated classic lookup count (three tables on every operation).
    pub classic_accesses: u64,
    /// Measured Nexus++ table accesses for the same workload.
    pub nexuspp_accesses: u64,
}

impl ClassicVerdict {
    /// Lookup-count ratio (classic / Nexus++) — the §III-B efficiency
    /// claim quantified.
    pub fn access_ratio(&self) -> f64 {
        if self.nexuspp_accesses == 0 {
            0.0
        } else {
            self.classic_accesses as f64 / self.nexuspp_accesses as f64
        }
    }
}

/// Replay `source` through a roomy Nexus++ engine with a random (seeded)
/// completion order and classify it for classic Nexus.
///
/// Execution order matters for waiter-count peaks; a seeded random order
/// with a bounded in-flight window approximates the windowed execution of
/// the real machine. `window` bounds in-flight tasks (the Task Pool size).
pub fn classic_check(
    source: &mut dyn TraceSource,
    limits: ClassicLimits,
    window: usize,
    seed: u64,
) -> ClassicVerdict {
    // Roomy engine: we want the workload's *demands*, not capacity stalls.
    let cfg = NexusConfig {
        task_pool_entries: window.max(16),
        params_per_td: usize::MAX,
        dep_table_entries: (window.max(16)) * 8,
        kickoff_entries: usize::MAX,
        growable: true,
    };
    let mut engine = DependencyEngine::new(&cfg);
    let mut rng = Rng::new(seed);
    let mut ready: Vec<nexuspp_core::TdIndex> = Vec::new();
    let mut pending: VecDeque<nexuspp_trace::TaskRecord> = VecDeque::new();

    let mut oversized = 0u64;
    let mut max_params_seen = 0u64;
    let mut max_waiters = 0u64;
    let mut param_ops = 0u64; // parameters processed (check + finish)

    let mut exhausted = false;
    loop {
        // Admit up to the window.
        while !exhausted && engine.in_flight() < window {
            let rec = if let Some(r) = pending.pop_front() {
                r
            } else {
                match source.next_task() {
                    Some(r) => r,
                    None => {
                        exhausted = true;
                        break;
                    }
                }
            };
            max_params_seen = max_params_seen.max(rec.params.len() as u64);
            if rec.params.len() > limits.max_params {
                oversized += 1;
            }
            param_ops += rec.params.len() as u64;
            let (td, _) = match engine.admit(rec.fptr, rec.id, rec.params) {
                Ok(v) => v,
                Err(PoolError::PoolFull { .. }) => unreachable!("growable"),
                Err(PoolError::TaskTooLarge { .. }) => unreachable!("growable"),
            };
            match engine.check(td) {
                CheckProgress::Done { ready: r, .. } => {
                    if r {
                        ready.push(td);
                    }
                }
                CheckProgress::Stalled { .. } => unreachable!("growable"),
            }
        }
        if ready.is_empty() {
            break;
        }
        // Finish a random ready task.
        let pick = rng.gen_range(ready.len() as u64) as usize;
        let td = ready.swap_remove(pick);
        param_ops += engine.pool().get(td).params.len() as u64;
        let fin = engine.finish(td);
        ready.extend(fin.newly_ready);
    }
    // The live-waiter maximum is tracked monotonically by the table.
    max_waiters = max_waiters.max(engine.table().stats().max_waiters_live);

    let mut reasons = Vec::new();
    if oversized > 0 {
        reasons.push(format!(
            "{oversized} task(s) exceed the {}-parameter descriptor limit (max seen: {max_params_seen})",
            limits.max_params
        ));
    }
    if max_waiters > limits.kickoff_entries as u64 {
        reasons.push(format!(
            "kick-off list overflow: {max_waiters} waiters on one data segment (limit {})",
            limits.kickoff_entries
        ));
    }
    let nexuspp_accesses = engine.table().stats().chain_lengths.total()
        + engine.table().stats().inserts
        + engine.table().stats().deletes
        + engine.table().stats().ext_allocs;
    ClassicVerdict {
        supported: reasons.is_empty(),
        reasons,
        oversized_tasks: oversized,
        max_params_seen,
        max_waiters_seen: max_waiters,
        classic_accesses: param_ops * limits.tables_per_op,
        nexuspp_accesses,
    }
}

/// Convenience for in-memory traces.
pub fn classic_check_trace(
    trace: &Trace,
    limits: ClassicLimits,
    window: usize,
    seed: u64,
) -> ClassicVerdict {
    let mut src = trace.clone().into_source();
    classic_check(&mut src, limits, window, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexuspp_workloads::{stress, GaussianSpec, GridPattern, GridSpec};

    #[test]
    fn h264_wavefront_is_supported() {
        // The wavefront has ≤3 params and ≤2 dependents per block.
        let tr = GridSpec::small(20, 12).generate(GridPattern::Wavefront);
        let v = classic_check_trace(&tr, ClassicLimits::default(), 1024, 1);
        assert!(v.supported, "reasons: {:?}", v.reasons);
        assert!(v.max_params_seen <= 3);
    }

    #[test]
    fn gaussian_is_rejected_for_kickoff_overflow() {
        // Column fan-out exceeds any fixed kick-off list once n is large
        // enough relative to the window.
        let tr = GaussianSpec::new(64).trace();
        let v = classic_check_trace(&tr, ClassicLimits::default(), 1024, 1);
        assert!(!v.supported);
        assert!(v.max_waiters_seen > 8, "waiters: {}", v.max_waiters_seen);
        assert!(v.reasons.iter().any(|r| r.contains("kick-off")));
    }

    #[test]
    fn wide_params_rejected_for_descriptor_limit() {
        let tr = stress::wide_params(10, 12, 100);
        let v = classic_check_trace(&tr, ClassicLimits::default(), 64, 1);
        assert!(!v.supported);
        assert_eq!(v.oversized_tasks, 10);
        assert!(v.reasons.iter().any(|r| r.contains("parameter")));
    }

    #[test]
    fn nexuspp_uses_fewer_lookups() {
        let tr = GridSpec::small(16, 16).generate(GridPattern::Wavefront);
        let v = classic_check_trace(&tr, ClassicLimits::default(), 256, 7);
        assert!(
            v.access_ratio() > 1.0,
            "classic should cost more lookups: ratio {}",
            v.access_ratio()
        );
    }
}
