//! Zero-overhead list scheduling: the scalability upper bound.
//!
//! An omniscient manager with free dependency resolution, free
//! scheduling, and uncontended memory: each task occupies one of `n`
//! cores for `read + exec + write` (no prefetch overlap — a core is its
//! own Task Controller here). The resulting makespan bounds what any
//! task-management hardware can achieve for the graph, which is the right
//! yardstick for the Figure 7 curves ("limited application scalability
//! explains why the speedup gain decreases faster for the H.264
//! benchmark").

use nexuspp_core::engine::CheckProgress;
use nexuspp_core::pool::TdIndex;
use nexuspp_core::{DependencyEngine, NexusConfig};
use nexuspp_desim::{Scheduler, SimTime};
use nexuspp_hw::MemoryConfig;
use nexuspp_trace::{MemCost, TraceSource};
use std::collections::VecDeque;

fn mem_time(cost: MemCost, mem: &MemoryConfig) -> SimTime {
    match cost {
        MemCost::None => SimTime::ZERO,
        MemCost::Time(t) => t,
        MemCost::Bytes(b) => mem.transfer_time(b),
    }
}

/// Makespan of `source` under ideal list scheduling on `cores` cores.
/// Task duration = read + exec + write (timed by `mem` for byte-volume
/// costs) — a *no-prefetch* core model. Submission order is respected for
/// dependency discovery but imposes no rate limit. Note that a machine
/// with task buffering can overlap memory with execution and legitimately
/// beat this number; [`ideal_makespan_overlapped`] is the absolute bound.
pub fn ideal_makespan(source: &mut dyn TraceSource, cores: usize, mem: &MemoryConfig) -> SimTime {
    assert!(cores >= 1);
    let mut engine = DependencyEngine::new(&NexusConfig::unbounded());
    let mut durations: Vec<SimTime> = Vec::new();

    // Admit everything up front (an omniscient manager has no window) and
    // collect the initially ready set.
    let mut ready: VecDeque<TdIndex> = VecDeque::new();
    while let Some(rec) = source.next_task() {
        let dur = mem_time(rec.read, mem) + rec.exec + mem_time(rec.write, mem);
        let (td, _) = engine
            .admit(rec.fptr, rec.id, rec.params)
            .expect("growable engine cannot reject");
        if td.0 as usize >= durations.len() {
            durations.resize(td.0 as usize + 1, SimTime::ZERO);
        }
        durations[td.0 as usize] = dur;
        match engine.check(td) {
            CheckProgress::Done { ready: r, .. } => {
                if r {
                    ready.push_back(td);
                }
            }
            CheckProgress::Stalled { .. } => unreachable!("growable"),
        }
    }

    // Event-driven list scheduling.
    let mut sched: Scheduler<TdIndex> = Scheduler::new();
    let mut free_cores = cores;
    let mut makespan = SimTime::ZERO;
    loop {
        while free_cores > 0 {
            match ready.pop_front() {
                Some(td) => {
                    free_cores -= 1;
                    sched.schedule(durations[td.0 as usize], td);
                }
                None => break,
            }
        }
        match sched.pop() {
            Some((t, td)) => {
                makespan = t;
                free_cores += 1;
                let fin = engine.finish(td);
                ready.extend(fin.newly_ready);
            }
            None => break,
        }
    }
    assert_eq!(
        engine.in_flight(),
        0,
        "ideal schedule left tasks unfinished"
    );
    makespan
}

/// Absolute lower bound: perfect prefetching hides all memory time, so a
/// task occupies a core for its execution time only. No task manager —
/// hardware or software — can finish the graph faster on `cores` cores.
pub fn ideal_makespan_overlapped(source: &mut dyn TraceSource, cores: usize) -> SimTime {
    struct ExecOnly<'a>(&'a mut dyn TraceSource);
    impl TraceSource for ExecOnly<'_> {
        fn next_task(&mut self) -> Option<nexuspp_trace::TaskRecord> {
            self.0.next_task().map(|mut t| {
                t.read = MemCost::None;
                t.write = MemCost::None;
                t
            })
        }
        fn len_hint(&self) -> Option<u64> {
            self.0.len_hint()
        }
    }
    ideal_makespan(&mut ExecOnly(source), cores, &MemoryConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexuspp_trace::{Param, TaskRecord, Trace};
    use nexuspp_workloads::{GridPattern, GridSpec};

    fn mem() -> MemoryConfig {
        MemoryConfig::default()
    }

    #[test]
    fn independent_tasks_pack_perfectly() {
        let tasks: Vec<TaskRecord> = (0..16)
            .map(|i| TaskRecord {
                id: i,
                fptr: 1,
                params: vec![Param::inout(0x100 + i * 64, 8)],
                exec: SimTime::from_us(5),
                read: MemCost::None,
                write: MemCost::None,
            })
            .collect();
        let tr = Trace::from_tasks("ind", tasks);
        let mut s = tr.clone().into_source();
        assert_eq!(ideal_makespan(&mut s, 4, &mem()), SimTime::from_us(20));
        let mut s = tr.clone().into_source();
        assert_eq!(ideal_makespan(&mut s, 16, &mem()), SimTime::from_us(5));
        let mut s = tr.into_source();
        assert_eq!(ideal_makespan(&mut s, 1, &mem()), SimTime::from_us(80));
    }

    #[test]
    fn chain_is_serial_even_with_many_cores() {
        let tasks: Vec<TaskRecord> = (0..10)
            .map(|i| {
                let mut p = vec![Param::output(0x100 + i * 64, 8)];
                if i > 0 {
                    p.push(Param::input(0x100 + (i - 1) * 64, 8));
                }
                TaskRecord {
                    id: i,
                    fptr: 1,
                    params: p,
                    exec: SimTime::from_us(3),
                    read: MemCost::None,
                    write: MemCost::None,
                }
            })
            .collect();
        let mut s = Trace::from_tasks("chain", tasks).into_source();
        assert_eq!(ideal_makespan(&mut s, 8, &mem()), SimTime::from_us(30));
    }

    #[test]
    fn wavefront_bound_matches_profile() {
        // The ideal speedup of the deterministic wavefront approaches
        // tasks / critical-path for large core counts.
        let g = GridSpec::small(20, 12);
        let tr = g.generate(GridPattern::Wavefront);
        let mut s1 = tr.clone().into_source();
        let m1 = ideal_makespan(&mut s1, 1, &mem());
        let mut sbig = tr.clone().into_source();
        let mbig = ideal_makespan(&mut sbig, 1024, &mem());
        let profile = nexuspp_workloads::analysis::parallelism_profile(&tr);
        let ideal_speedup = m1 / mbig;
        let bound = profile.avg_parallelism();
        assert!(
            (ideal_speedup - bound).abs() / bound < 0.05,
            "ideal {ideal_speedup} vs avg parallelism {bound}"
        );
    }

    #[test]
    fn byte_costs_timed_by_memory_model() {
        let tasks = vec![TaskRecord {
            id: 0,
            fptr: 1,
            params: vec![Param::inout(0x100, 8)],
            exec: SimTime::from_ns(100),
            read: MemCost::Bytes(256),  // 2 chunks → 24 ns
            write: MemCost::Bytes(128), // 1 chunk → 12 ns
        }];
        let mut s = Trace::from_tasks("b", tasks).into_source();
        assert_eq!(
            ideal_makespan(&mut s, 1, &mem()),
            SimTime::from_ns(100 + 24 + 12)
        );
    }
}
