//! The headline incremental-reuse guarantee on the 1000-task stencil:
//! a single-cell edit re-runs only its light-cone (structural
//! assertion, always on), and the wall-clock win over from-scratch is
//! at least 2× (measured assertion, release builds only — debug-build
//! timing is noise).

use nexuspp_frontend::Lowering;
use nexuspp_incr::Backend;
use nexuspp_workloads::IncrStencilSpec;
use std::time::{Duration, Instant};

const BACKEND: Backend = Backend::Engine { shards: 4 };

/// Best-of-`rounds` timing of one from-scratch + one 1-edit re-run,
/// returning `(from_scratch, one_edit)` and asserting the structural
/// bound every round.
fn measure(spec: &IncrStencilSpec, rounds: u64) -> (Duration, Duration) {
    let mut ip = spec.build();
    let (mut best_full, mut best_edit) = (Duration::MAX, Duration::MAX);
    for round in 0..rounds {
        ip.invalidate_all();
        let t0 = Instant::now();
        let full = ip.rerun(Lowering::Renamed, &BACKEND);
        best_full = best_full.min(t0.elapsed());
        assert_eq!(full.reran as u64, spec.task_count());

        ip.edit_batch(spec.touch_edits(1, round)).unwrap();
        let t1 = Instant::now();
        let one = ip.rerun(Lowering::Renamed, &BACKEND);
        best_edit = best_edit.min(t1.elapsed());

        // Structural bound, independent of the clock: the re-executed
        // set stays inside the touched cell's light-cone, well under
        // the full program.
        assert!(one.reran > 0, "a fresh seed must dirty the cone");
        assert!(
            (one.reran as u64) <= spec.cone_bound(0),
            "reran {} exceeds the light-cone bound {}",
            one.reran,
            spec.cone_bound(0)
        );
        assert_eq!((one.reran + one.reused) as u64, spec.task_count());
    }
    (best_full, best_edit)
}

#[test]
fn one_edit_rerun_beats_from_scratch() {
    let spec = IncrStencilSpec::thousand();
    assert_eq!(spec.task_count(), 1000);
    // The structural win is ~10×: the cone of one cell is at most
    // steps * (2 * steps + 1) tasks of cells * steps.
    assert!(spec.cone_bound(0) * 2 < spec.task_count());

    let (full, edit) = measure(&spec, 3);
    if cfg!(debug_assertions) {
        // Debug timing is dominated by allocator noise; the structural
        // assertions above already ran. Nothing more to check.
        return;
    }
    let ratio = full.as_secs_f64() / edit.as_secs_f64().max(1e-9);
    assert!(
        ratio >= 2.0,
        "1-edit re-run must be at least 2x faster than from-scratch: \
         from-scratch {full:?}, 1-edit {edit:?} (ratio {ratio:.2})"
    );
}
