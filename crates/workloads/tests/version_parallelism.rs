//! The *measured* renaming claim: on a real 4-worker
//! [`ShardedRuntime`], the renamed lowering of a version chain executes
//! with at least twice the observed concurrency of the raw lowering.
//!
//! The workload is [`VersionStressSpec::single_chain`] — the starkest
//! shape: raw is strictly serial (every task WAW-chained through one
//! address), renamed is fully independent. Each task body holds an
//! in-flight counter across a sleep; the high-water mark of that
//! counter is the executed width. Raw *must* measure exactly 1 (the
//! dependence chain forbids overlap — any higher reading is a
//! correctness bug, not noise); renamed, with 12 ready tasks on 4
//! workers and a generous sleep, reliably overlaps ≥ 2.

use nexuspp_frontend::Lowering;
use nexuspp_runtime::ShardedRuntime;
use nexuspp_workloads::VersionStressSpec;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn measured_width(lowering: Lowering) -> u32 {
    let lp = VersionStressSpec::single_chain(12).lowered(lowering);
    let rt = ShardedRuntime::new(4, 2);
    let in_flight = Arc::new(AtomicU32::new(0));
    let high_water = Arc::new(AtomicU32::new(0));
    for sub in lp.tasks.iter().cloned() {
        let (in_flight, high_water) = (Arc::clone(&in_flight), Arc::clone(&high_water));
        rt.spawn_lowered(sub, move || {
            let now = in_flight.fetch_add(1, Ordering::AcqRel) + 1;
            high_water.fetch_max(now, Ordering::AcqRel);
            std::thread::sleep(Duration::from_millis(10));
            in_flight.fetch_sub(1, Ordering::AcqRel);
        });
    }
    rt.barrier();
    high_water.load(Ordering::Acquire)
}

#[test]
fn renamed_chain_doubles_measured_executed_width() {
    let raw = measured_width(Lowering::Raw);
    assert_eq!(raw, 1, "raw WAW chain must never overlap");
    let renamed = measured_width(Lowering::Renamed);
    assert!(
        renamed >= 2 * raw,
        "renamed width {renamed} vs raw width {raw}: renaming must at least double"
    );
}
