//! The 120×68-macroblock grid benchmarks of Figure 4.
//!
//! All four benchmarks share the same task count (8160), the same per-task
//! timing model, and the same generation order ("from left to right and
//! from top to bottom" — row-major); they differ only in their dependency
//! pattern:
//!
//! * [`GridPattern::Wavefront`] (Fig 4a): `decode(X[i][j-1], X[i-1][j+1],
//!   X[i][j])` — the H.264 macroblock wavefront with its ramp effect
//!   (available parallelism grows to mid-frame, then shrinks),
//! * [`GridPattern::Horizontal`] (Fig 4b): each task depends on its left
//!   neighbour — rows are serial chains aligned *with* generation order, so
//!   ready tasks appear only once per row of submissions ("the processing
//!   of non-ready tasks before reaching the next ready task … limits the
//!   scalability of this benchmark"),
//! * [`GridPattern::Vertical`] (Fig 4c): each task depends on its upper
//!   neighbour — a whole row of independent chains is ready the moment it
//!   is generated, sustaining `cols`-way parallelism,
//! * [`GridPattern::Independent`]: no dependencies at all — the maximum-
//!   scalability benchmark behind the 54×/143×/221× headline numbers.

use crate::timing::H264Timing;
use nexuspp_core::TaskBuilder;
use nexuspp_desim::Rng;
use nexuspp_trace::{MemCost, Trace};

/// Which Figure 4 dependency pattern to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GridPattern {
    /// (a) H.264 wavefront: left + up-right inputs.
    Wavefront,
    /// (b) Row chains: left input only.
    Horizontal,
    /// (c) Column chains: up input only.
    Vertical,
    /// Independent tasks (maximum scalability).
    Independent,
}

impl GridPattern {
    /// Benchmark label used in reports.
    pub fn name(self) -> &'static str {
        match self {
            GridPattern::Wavefront => "h264-wavefront",
            GridPattern::Horizontal => "horizontal-deps",
            GridPattern::Vertical => "vertical-deps",
            GridPattern::Independent => "independent",
        }
    }

    /// All four patterns, in the order Figure 7 reports them.
    pub fn all() -> [GridPattern; 4] {
        [
            GridPattern::Independent,
            GridPattern::Wavefront,
            GridPattern::Horizontal,
            GridPattern::Vertical,
        ]
    }
}

/// Grid benchmark parameters.
#[derive(Debug, Clone)]
pub struct GridSpec {
    /// Rows (`i` loop; 120 in the paper — one 1920×1088 frame).
    pub rows: u32,
    /// Columns (`j` loop; 68 in the paper).
    pub cols: u32,
    /// Bytes per macroblock (16×16 4-byte elements = 1 KiB).
    pub block_bytes: u32,
    /// Base address of the macroblock array.
    pub base_addr: u64,
    /// Per-task timing model.
    pub timing: H264Timing,
    /// RNG seed for the timing jitter.
    pub seed: u64,
}

impl Default for GridSpec {
    fn default() -> Self {
        GridSpec {
            rows: 120,
            cols: 68,
            block_bytes: 1024,
            base_addr: 0x1000_0000,
            timing: H264Timing::default(),
            seed: 0x4826_4C0D, // arbitrary fixed default: results reproducible
        }
    }
}

impl GridSpec {
    /// A smaller grid (for tests) with deterministic timing.
    pub fn small(rows: u32, cols: u32) -> Self {
        GridSpec {
            rows,
            cols,
            timing: H264Timing::deterministic(),
            ..Default::default()
        }
    }

    /// Total task count (`rows × cols`; 8160 in the paper).
    pub fn task_count(&self) -> u64 {
        self.rows as u64 * self.cols as u64
    }

    /// Address of macroblock `X[i][j]`.
    pub fn block_addr(&self, i: u32, j: u32) -> u64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.base_addr + (i as u64 * self.cols as u64 + j as u64) * self.block_bytes as u64
    }

    /// Generate the trace for `pattern` in row-major submission order.
    pub fn generate(&self, pattern: GridPattern) -> Trace {
        let mut rng = Rng::new(self.seed);
        let mut tasks = Vec::with_capacity(self.task_count() as usize);
        let b = self.block_bytes;
        // Address space for the Independent pattern's private blocks, laid
        // out beyond the shared array so nothing collides.
        let private_base = self.base_addr + self.task_count() * 4 * b as u64;
        for i in 0..self.rows {
            for j in 0..self.cols {
                let id = (i as u64) * self.cols as u64 + j as u64;
                let mut t = TaskBuilder::new(0xDEC0DE).tag(id);
                match pattern {
                    GridPattern::Wavefront => {
                        if j > 0 {
                            t = t.reads(self.block_addr(i, j - 1), b);
                        }
                        if i > 0 && j + 1 < self.cols {
                            t = t.reads(self.block_addr(i - 1, j + 1), b);
                        }
                        t = t.read_writes(self.block_addr(i, j), b);
                    }
                    GridPattern::Horizontal => {
                        if j > 0 {
                            t = t.reads(self.block_addr(i, j - 1), b);
                        }
                        t = t.read_writes(self.block_addr(i, j), b);
                    }
                    GridPattern::Vertical => {
                        if i > 0 {
                            t = t.reads(self.block_addr(i - 1, j), b);
                        }
                        t = t.read_writes(self.block_addr(i, j), b);
                    }
                    GridPattern::Independent => {
                        // Same 3-parameter shape as a wavefront interior
                        // task, but on task-private addresses.
                        let p = private_base + id * 4 * b as u64;
                        t = t
                            .reads(p, b)
                            .reads(p + b as u64, b)
                            .read_writes(p + 2 * b as u64, b);
                    }
                }
                let (exec, read, write) = self.timing.sample(&mut rng);
                tasks.push(t.record(exec, MemCost::Time(read), MemCost::Time(write)));
            }
        }
        Trace::from_tasks(pattern.name(), tasks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexuspp_core::oracle::OracleResolver;

    #[test]
    fn paper_dimensions() {
        let g = GridSpec::default();
        assert_eq!(g.task_count(), 8160);
        let t = g.generate(GridPattern::Wavefront);
        assert_eq!(t.len(), 8160);
    }

    #[test]
    fn wavefront_corner_tasks_have_fewer_inputs() {
        let g = GridSpec::small(3, 3);
        let t = g.generate(GridPattern::Wavefront);
        // (0,0): no left, no up-right → 1 param.
        assert_eq!(t.tasks[0].params.len(), 1);
        // (0,1): left only (no row above).
        assert_eq!(t.tasks[1].params.len(), 2);
        // (1,0): no left, up-right exists → 2 params.
        assert_eq!(t.tasks[3].params.len(), 2);
        // (1,1): left + up-right + self.
        assert_eq!(t.tasks[4].params.len(), 3);
        // (1,2): j+1 out of range → left + self.
        assert_eq!(t.tasks[5].params.len(), 2);
    }

    #[test]
    fn independent_tasks_are_all_ready_immediately() {
        let g = GridSpec::small(10, 10);
        let t = g.generate(GridPattern::Independent);
        let mut oracle = OracleResolver::new();
        for task in &t.tasks {
            let (_, ready) = oracle.submit(&task.params);
            assert!(ready);
        }
    }

    #[test]
    fn horizontal_rows_are_chains() {
        let g = GridSpec::small(4, 6);
        let t = g.generate(GridPattern::Horizontal);
        let mut oracle = OracleResolver::new();
        let mut ready_at_submit = 0;
        for task in &t.tasks {
            let (_, ready) = oracle.submit(&task.params);
            if ready {
                ready_at_submit += 1;
            }
        }
        // Exactly one immediately-ready task per row (its head).
        assert_eq!(ready_at_submit, 4);
    }

    #[test]
    fn vertical_first_row_all_ready() {
        let g = GridSpec::small(4, 6);
        let t = g.generate(GridPattern::Vertical);
        let mut oracle = OracleResolver::new();
        let mut ready = Vec::new();
        for task in &t.tasks {
            let (id, r) = oracle.submit(&task.params);
            if r {
                ready.push(id);
            }
        }
        // Exactly the 6 tasks of row 0.
        assert_eq!(ready, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = GridSpec::default().generate(GridPattern::Wavefront);
        let b = GridSpec::default().generate(GridPattern::Wavefront);
        assert_eq!(a, b);
    }

    #[test]
    fn trace_stats_match_published_averages() {
        let t = GridSpec::default().generate(GridPattern::Wavefront);
        let s = t.stats();
        let exec_us = s.mean_exec().as_us_f64();
        let mem_us = s.mean_mem_time().as_us_f64();
        assert!((exec_us - 11.8).abs() < 0.3, "exec mean {exec_us} µs");
        assert!((mem_us - 7.5).abs() < 0.2, "mem mean {mem_us} µs");
    }

    #[test]
    fn addresses_never_collide_across_patterns() {
        let g = GridSpec::small(5, 5);
        let ind = g.generate(GridPattern::Independent);
        let mut addrs = std::collections::HashSet::new();
        for t in &ind.tasks {
            for p in &t.params {
                assert!(addrs.insert(p.addr), "address reuse breaks independence");
            }
        }
    }
}
