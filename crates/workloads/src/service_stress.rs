//! The service-stress workload: per-tenant submission programs for the
//! streaming ingress.
//!
//! Each tenant gets its own *program* — a sequence of pre-addressed
//! [`Submission`]s in program order — over a tenant-scoped address
//! space (tenant id in the high bits), so tenants are independent by
//! construction and any cross-tenant serialization observed in a run is
//! the service's fault, never the workload's. Within a tenant the
//! program mixes the two shapes that stress an admission layer
//! differently:
//!
//! * **chains** — serial `inout` reuse of per-chain cells: tasks park
//!   behind their predecessors, *occupying budget* without being
//!   runnable, which is what pushes a tenant into its in-flight cap;
//! * **independents** — fresh-address writers sprinkled every
//!   `indep_every` steps: immediately-ready work that keeps workers
//!   busy and retires quickly, exercising the charge/credit churn.
//!
//! Submission order is round-robin across a tenant's chains by depth
//! (like the capacity stressor), so the stream wants `≈ chains`
//! resident tasks at once per tenant — size budgets *below* that to
//! exercise budget denial, lane fill, and client backpressure.

use nexuspp_core::{Submission, TaskBuilder, TenantId};

/// Parameters of one service-stress run (identical program shape per
/// tenant, disjoint address spaces).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStressSpec {
    /// Concurrent tenants (ids `1..=tenants`).
    pub tenants: u32,
    /// Serial chains per tenant.
    pub chains: u32,
    /// Tasks per chain.
    pub chain_len: u32,
    /// Every `indep_every`-th position per chain also emits an
    /// independent fresh-address task. 0 disables independents.
    pub indep_every: u32,
}

impl ServiceStressSpec {
    /// The stress shape the `serve` experiment and CI gate run: 4
    /// tenants, chains sized to overrun typical budgets.
    pub fn pressure() -> ServiceStressSpec {
        ServiceStressSpec {
            tenants: 4,
            chains: 8,
            chain_len: 32,
            indep_every: 4,
        }
    }

    /// A smoke-sized variant.
    pub fn quick() -> ServiceStressSpec {
        ServiceStressSpec {
            tenants: 4,
            chains: 4,
            chain_len: 8,
            indep_every: 2,
        }
    }

    /// Tasks in one tenant's program.
    pub fn tasks_per_tenant(&self) -> u64 {
        let chained = self.chains as u64 * self.chain_len as u64;
        let indep = if self.indep_every == 0 {
            0
        } else {
            self.chains as u64 * (self.chain_len as u64 / self.indep_every as u64)
        };
        chained + indep
    }

    /// Total tasks across all tenants.
    pub fn task_count(&self) -> u64 {
        self.tenants as u64 * self.tasks_per_tenant()
    }

    /// One tenant's program, in program order. Addresses are scoped by
    /// `tenant` in bits 40+, so programs of distinct tenants touch
    /// disjoint dependence-table keys.
    pub fn program(&self, tenant: TenantId) -> Vec<Submission> {
        assert!(self.chains >= 1 && self.chain_len >= 1);
        let base = (1 + tenant.0 as u64) << 40;
        let cell = |chain: u32| base | (chain as u64 * 64);
        let mut fresh = base | (1 << 32);
        let mut out = Vec::with_capacity(self.tasks_per_tenant() as usize);
        let mut tag = 0u64;
        for depth in 0..self.chain_len {
            for chain in 0..self.chains {
                out.push(
                    TaskBuilder::new(0x5E5E)
                        .tag(tag)
                        .tenant(tenant)
                        .read_writes(cell(chain), 16)
                        .build(),
                );
                tag += 1;
                if self.indep_every > 0 && depth % self.indep_every == self.indep_every - 1 {
                    out.push(
                        TaskBuilder::new(0x5E5F)
                            .tag(tag)
                            .tenant(tenant)
                            .writes(fresh, 16)
                            .build(),
                    );
                    fresh += 64;
                    tag += 1;
                }
            }
        }
        out
    }

    /// Every tenant's program, keyed by tenant id (`1..=tenants`).
    pub fn programs(&self) -> Vec<(TenantId, Vec<Submission>)> {
        (1..=self.tenants)
            .map(|t| (TenantId(t), self.program(TenantId(t))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexuspp_core::oracle::OracleResolver;
    use std::collections::BTreeSet;

    #[test]
    fn tenant_programs_are_address_disjoint_and_tagged() {
        let spec = ServiceStressSpec::pressure();
        let programs = spec.programs();
        assert_eq!(programs.len(), 4);
        let mut seen = BTreeSet::new();
        for (tenant, prog) in &programs {
            assert_eq!(prog.len() as u64, spec.tasks_per_tenant());
            let addrs: BTreeSet<u64> = prog
                .iter()
                .flat_map(|s| s.params.iter().map(|p| p.addr))
                .collect();
            for a in &addrs {
                assert!(seen.insert(*a), "address {a:#x} shared across tenants");
            }
            assert!(prog.iter().all(|s| s.tenant == *tenant));
            assert!(prog.iter().all(|s| s.validate().is_ok()));
        }
    }

    #[test]
    fn chains_serialize_but_independents_are_ready_at_once() {
        let spec = ServiceStressSpec {
            tenants: 1,
            chains: 3,
            chain_len: 8,
            indep_every: 2,
        };
        let prog = spec.program(TenantId(1));
        let mut oracle = OracleResolver::new();
        let mut ready_at_submit = 0u32;
        for s in &prog {
            let (_, ready) = oracle.submit(&s.params);
            if ready {
                ready_at_submit += 1;
            }
        }
        // Chain heads (3) plus every independent are immediately ready;
        // the rest park behind their chain predecessor.
        let independents = spec.chains * (spec.chain_len / spec.indep_every);
        assert_eq!(ready_at_submit, spec.chains + independents);
        // And the whole program drains.
        let mut ready = oracle.ready_set();
        let mut done = 0u64;
        while let Some(id) = ready.pop() {
            done += 1;
            ready.extend(oracle.finish(id));
        }
        assert_eq!(done, spec.tasks_per_tenant());
        assert!(oracle.all_done());
    }

    #[test]
    fn programs_are_reproducible() {
        let a = ServiceStressSpec::pressure().programs();
        let b = ServiceStressSpec::pressure().programs();
        assert_eq!(a, b);
    }
}
