//! The capacity-stress workload: deep serial `inout` chains fanned out
//! wide enough to overflow any bounded shard table.
//!
//! Shape: one root task writes a seed address homed on shard 0; `chains`
//! chain-head tasks each read the seed and take `inout` ownership of
//! their chain's cell (cells steered round-robin across shards); every
//! subsequent chain task accesses its cell `inout`, so each chain is
//! strictly serial. Every `wide_every`-th task of a chain additionally
//! writes a fresh address homed on the *next* shard over, so bounded
//! resolvers must repeatedly perform atomic multi-shard admissions.
//!
//! Submission order is round-robin across chains by depth, which is what
//! makes the stream a capacity stressor: after the root, all `chains`
//! heads are submitted before any chain's second task, so a resolver
//! wants `≈ chains` resident tasks per shard — size `chains` well above
//! the capacity under test and every submission past the bound must
//! stall, retry, and resume on a finish report. Because producers still
//! precede consumers (StarSs program order), a correct bounded resolver
//! drains the stream at any capacity ≥ 1; a deadlock here is a protocol
//! bug, not a workload artifact.

use nexuspp_core::{shard_of_addr, TaskBuilder};
use nexuspp_desim::SimTime;
use nexuspp_trace::{MemCost, Trace};

/// Parameters of the capacity-stress stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityStressSpec {
    /// Serial chains released at once by the root (the fan-out width —
    /// size this above the capacity under test).
    pub chains: u32,
    /// Serial `inout` tasks per chain (the depth that keeps pressure on
    /// while earlier tasks retire).
    pub chain_len: u32,
    /// Shard count the cells are steered against (must match the
    /// consuming resolver for the spread to mean anything).
    pub shards: u32,
    /// Every `wide_every`-th task of a chain also writes a fresh address
    /// on the next shard over (multi-shard atomic admissions). 0 disables
    /// wide tasks.
    pub wide_every: u32,
    /// Pure execution time per task.
    pub exec_ns: u64,
}

impl CapacityStressSpec {
    /// A stream sized to swamp bounded shards: 4 chains per shard, depth
    /// 64, a two-shard-wide task every 4th step.
    pub fn pressure(shards: u32) -> Self {
        CapacityStressSpec {
            chains: 4 * shards.max(1),
            chain_len: 64,
            shards,
            wide_every: 4,
            exec_ns: 0,
        }
    }

    /// Total tasks including the root.
    pub fn task_count(&self) -> u64 {
        1 + self.chains as u64 * self.chain_len as u64
    }

    /// Generate the trace (round-robin submission order across chains).
    pub fn generate(&self) -> Trace {
        assert!(self.chains >= 1, "need at least one chain");
        assert!(self.chain_len >= 1, "chains need at least one task");
        assert!(self.shards >= 1, "need at least one shard");
        let stride = 64u64;
        let base = 0xCA9A_0000u64;
        let mut cursor = 0u64;
        // Steer candidate segments through the resolver's own router, so
        // the stream stays valid for any hash family the core exports.
        let mut addr_on = |target: u32| -> u64 {
            loop {
                let addr = base + cursor * stride;
                cursor += 1;
                if shard_of_addr(addr, self.shards as usize) == target as usize {
                    return addr;
                }
            }
        };
        let seed_addr = addr_on(0);
        let cells: Vec<u64> = (0..self.chains).map(|c| addr_on(c % self.shards)).collect();
        let record =
            |b: TaskBuilder| b.record(SimTime::from_ns(self.exec_ns), MemCost::None, MemCost::None);
        let mut tasks = Vec::with_capacity(self.task_count() as usize);
        tasks.push(record(
            TaskBuilder::new(0xCAFA).tag(0).writes(seed_addr, 64),
        ));
        let mut id = 1u64;
        for depth in 0..self.chain_len {
            for c in 0..self.chains {
                let cell = cells[c as usize];
                let mut b = TaskBuilder::new(0xCAFA).tag(id);
                if depth == 0 {
                    b = b.reads(seed_addr, 64);
                }
                b = b.read_writes(cell, 16);
                if self.wide_every > 0 && depth % self.wide_every == self.wide_every - 1 {
                    b = b.writes(addr_on((c + 1) % self.shards), 16);
                }
                tasks.push(record(b));
                id += 1;
            }
        }
        Trace::from_tasks(
            format!(
                "capacity-stress-{}x{}s{}w{}",
                self.chains, self.chain_len, self.shards, self.wide_every
            ),
            tasks,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexuspp_core::oracle::OracleResolver;

    #[test]
    fn only_root_starts_and_fanout_follows() {
        let spec = CapacityStressSpec::pressure(4);
        let trace = spec.generate();
        assert_eq!(trace.len() as u64, spec.task_count());
        let mut oracle = OracleResolver::new();
        let mut ready_at_submit = 0;
        for t in &trace.tasks {
            let (_, ready) = oracle.submit(&t.params);
            if ready {
                ready_at_submit += 1;
            }
        }
        assert_eq!(ready_at_submit, 1, "only the root may start immediately");
        let mut ready = oracle.ready_set();
        assert_eq!(ready.len(), 1);
        let woken = oracle.finish(ready.pop().unwrap());
        assert_eq!(
            woken.len() as u32,
            spec.chains,
            "the root must release every chain head at once"
        );
    }

    #[test]
    fn chains_serialize_and_drain() {
        let spec = CapacityStressSpec {
            chains: 6,
            chain_len: 9,
            shards: 3,
            wide_every: 2,
            exec_ns: 0,
        };
        let trace = spec.generate();
        let mut oracle = OracleResolver::new();
        for t in &trace.tasks {
            oracle.submit(&t.params);
        }
        let mut ready = oracle.ready_set();
        let mut done = 0u64;
        while let Some(id) = ready.pop() {
            done += 1;
            let woken = oracle.finish(id);
            ready.extend(woken);
            assert!(
                ready.len() as u32 <= spec.chains,
                "chains must stay strictly serial"
            );
        }
        assert_eq!(done, spec.task_count());
        assert!(oracle.all_done());
    }

    #[test]
    fn cells_spread_across_shards_and_wide_tasks_span_two() {
        let spec = CapacityStressSpec::pressure(4);
        let trace = spec.generate();
        let mut cell_shards = std::collections::BTreeSet::new();
        let mut wide_tasks = 0u32;
        for t in trace.tasks.iter().skip(1) {
            let shards: std::collections::BTreeSet<usize> =
                t.params.iter().map(|p| shard_of_addr(p.addr, 4)).collect();
            if t.params.iter().filter(|p| !p.mode.is_read_only()).count() == 2 {
                wide_tasks += 1;
                assert_eq!(shards.len(), 2, "wide tasks must span two shards");
            }
            cell_shards.extend(shards);
        }
        assert_eq!(cell_shards.len(), 4, "cells must cover every shard");
        assert_eq!(
            wide_tasks,
            spec.chains * (spec.chain_len / spec.wide_every),
            "every wide_every-th step of every chain is wide"
        );
    }

    #[test]
    fn streams_are_reproducible() {
        let a = CapacityStressSpec::pressure(2).generate();
        let b = CapacityStressSpec::pressure(2).generate();
        assert_eq!(a.tasks, b.tasks);
    }
}
