//! Per-task time synthesis for the H.264-derived benchmarks.
//!
//! The paper drives Figure 7 (and the headline speedups) with "a trace of
//! parallel H.264 decoder decoding one full HD frame on a Cell Broadband
//! Engine processor, consisting of 8160 tasks in total. […] On average a
//! task spends 7.5 µs for accessing off-chip memory and 11.8 µs for
//! execution."
//!
//! We do not have the Cell trace, so [`H264Timing`] synthesizes per-task
//! times from clamped normal distributions whose means match the published
//! averages. The read/write split follows the data footprint of a
//! macroblock decode (two read-only inputs plus the inout block read ≈ 3×
//! the single block written back). Only the averages are load-bearing for
//! the reproduced figures; the spread is a documented knob.

use nexuspp_desim::{Rng, SimTime};

/// Distribution parameters for one time component, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeDist {
    /// Mean.
    pub mean: f64,
    /// Standard deviation.
    pub sd: f64,
    /// Clamp floor.
    pub min: f64,
    /// Clamp ceiling.
    pub max: f64,
}

impl TimeDist {
    /// A distribution that always returns `ns`.
    pub const fn constant(ns: f64) -> Self {
        TimeDist {
            mean: ns,
            sd: 0.0,
            min: ns,
            max: ns,
        }
    }

    /// Draw one sample.
    pub fn sample(&self, rng: &mut Rng) -> SimTime {
        SimTime::from_ns_f64(rng.gen_normal_clamped(self.mean, self.sd, self.min, self.max))
    }
}

/// H.264-trace-equivalent task timing model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct H264Timing {
    /// Execution time (mean 11.8 µs in the paper).
    pub exec: TimeDist,
    /// Input-fetch time (≈ 3/4 of the 7.5 µs memory total).
    pub read: TimeDist,
    /// Output-writeback time (≈ 1/4 of the 7.5 µs memory total).
    pub write: TimeDist,
}

impl Default for H264Timing {
    fn default() -> Self {
        H264Timing {
            exec: TimeDist {
                mean: 11_800.0,
                sd: 2_500.0,
                min: 4_000.0,
                max: 19_600.0,
            },
            read: TimeDist {
                mean: 5_625.0,
                sd: 1_200.0,
                min: 1_500.0,
                max: 9_750.0,
            },
            write: TimeDist {
                mean: 1_875.0,
                sd: 400.0,
                min: 500.0,
                max: 3_250.0,
            },
        }
    }
}

impl H264Timing {
    /// A deterministic variant (zero variance) for analytical tests.
    pub fn deterministic() -> Self {
        H264Timing {
            exec: TimeDist::constant(11_800.0),
            read: TimeDist::constant(5_625.0),
            write: TimeDist::constant(1_875.0),
        }
    }

    /// Draw (exec, read, write) for one task.
    pub fn sample(&self, rng: &mut Rng) -> (SimTime, SimTime, SimTime) {
        (
            self.exec.sample(rng),
            self.read.sample(rng),
            self.write.sample(rng),
        )
    }

    /// Mean total memory time implied by the model (read + write means).
    pub fn mean_mem_ns(&self) -> f64 {
        self.read.mean + self.write.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_means_match_paper() {
        let t = H264Timing::default();
        assert!((t.exec.mean - 11_800.0).abs() < 1e-9);
        assert!((t.mean_mem_ns() - 7_500.0).abs() < 1e-9);
    }

    #[test]
    fn sample_means_converge_to_published_averages() {
        let t = H264Timing::default();
        let mut rng = Rng::new(2012);
        let n = 20_000;
        let mut exec = 0.0;
        let mut mem = 0.0;
        for _ in 0..n {
            let (e, r, w) = t.sample(&mut rng);
            exec += e.as_ns_f64();
            mem += r.as_ns_f64() + w.as_ns_f64();
        }
        let exec_mean = exec / n as f64;
        let mem_mean = mem / n as f64;
        // Clamping is symmetric around the mean, so drift stays small.
        assert!(
            (exec_mean - 11_800.0).abs() < 150.0,
            "exec mean drifted: {exec_mean}"
        );
        assert!(
            (mem_mean - 7_500.0).abs() < 100.0,
            "mem mean drifted: {mem_mean}"
        );
    }

    #[test]
    fn deterministic_model_has_no_jitter() {
        let t = H264Timing::deterministic();
        let mut rng = Rng::new(1);
        let (e1, r1, w1) = t.sample(&mut rng);
        let (e2, r2, w2) = t.sample(&mut rng);
        assert_eq!((e1, r1, w1), (e2, r2, w2));
        assert_eq!(e1, SimTime::from_ns(11_800));
    }

    #[test]
    fn samples_respect_clamps() {
        let t = H264Timing::default();
        let mut rng = Rng::new(7);
        for _ in 0..5_000 {
            let (e, r, w) = t.sample(&mut rng);
            assert!(e >= SimTime::from_ns(4_000) && e <= SimTime::from_ns(19_600));
            assert!(r >= SimTime::from_ns(1_500) && r <= SimTime::from_ns(9_750));
            assert!(w >= SimTime::from_ns(500) && w <= SimTime::from_ns(3_250));
        }
    }
}
