//! The wake-stress workload: a wide fan-in that concentrates kick-off
//! traffic on a single shard.
//!
//! Shape: `producers` independent writer tasks whose output addresses
//! all hash to **one** shard (shard 0 of a `shards`-way partition), each
//! followed by `consumers_per` reader tasks parked on its address. Every
//! producer completion therefore releases a burst of `consumers_per`
//! dependents — and because the dependence addresses share a home shard,
//! every burst lands on the *same* shard's kick-off path, from many
//! concurrent finishers at once.
//!
//! This is the pathological stream for wake delivery: resolution work is
//! trivial (one address per task), but the hot shard must hand out
//! `producers × consumers_per` wake records produced under maximal
//! finisher concurrency. The threaded dispatcher harness in
//! `nexuspp_shard::stress` replays the identical structure directly;
//! this module generates it as an address trace so the multi-Maestro
//! model (whose per-shard kick-off FIFOs report the resulting depth) and
//! the oracle can consume the same DAG.

use nexuspp_core::{nth_addr_on_shard, TaskBuilder};
use nexuspp_desim::SimTime;
use nexuspp_trace::{MemCost, Trace};

/// Parameters of the wake-stress stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WakeStressSpec {
    /// Independent producer tasks, all homed on the hot shard.
    pub producers: u32,
    /// Dependent reader tasks parked on each producer's address.
    pub consumers_per: u32,
    /// Shard-partition width the addresses are aimed at (every producer
    /// address hashes to shard 0 of this many).
    pub shards: usize,
    /// Pure execution time per task.
    pub exec_ns: u64,
}

impl WakeStressSpec {
    /// The default sweep point: a burst of `consumers_per` wakes per
    /// finish across `producers` concurrent finishers on 4 shards.
    pub fn new(producers: u32, consumers_per: u32) -> Self {
        WakeStressSpec {
            producers,
            consumers_per,
            shards: 4,
            exec_ns: 0,
        }
    }

    /// Total tasks (producers plus all consumers).
    pub fn task_count(&self) -> u64 {
        self.producers as u64 * (1 + self.consumers_per as u64)
    }

    /// Kick-off notifications the hot shard must deliver.
    pub fn wake_count(&self) -> u64 {
        self.producers as u64 * self.consumers_per as u64
    }

    /// Producer `p`'s address: the `p`-th address homed on shard 0 —
    /// the same address the threaded harness in `nexuspp_shard::stress`
    /// aims at (both delegate to [`nth_addr_on_shard`]).
    pub fn producer_addr(&self, p: u32) -> u64 {
        nth_addr_on_shard(0, self.shards, p)
    }

    /// Generate the trace: producer `p` is task `p`; its consumers are
    /// tasks `producers + p·consumers_per ..` in submission order.
    pub fn generate(&self) -> Trace {
        assert!(self.producers >= 1, "need at least one producer");
        assert!(self.shards >= 1, "need at least one shard");
        let record =
            |b: TaskBuilder| b.record(SimTime::from_ns(self.exec_ns), MemCost::None, MemCost::None);
        let mut tasks = Vec::with_capacity(self.task_count() as usize);
        for p in 0..self.producers {
            tasks.push(record(
                TaskBuilder::new(0x3A4E)
                    .tag(p as u64)
                    .writes(self.producer_addr(p), 16),
            ));
        }
        for p in 0..self.producers {
            let addr = self.producer_addr(p);
            for c in 0..self.consumers_per {
                let id = self.producers as u64 + p as u64 * self.consumers_per as u64 + c as u64;
                tasks.push(record(TaskBuilder::new(0x3A4E).tag(id).reads(addr, 16)));
            }
        }
        Trace::from_tasks(
            format!("wake-stress-{}x{}", self.producers, self.consumers_per),
            tasks,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexuspp_core::oracle::OracleResolver;

    #[test]
    fn producers_start_ready_and_release_their_full_burst() {
        let spec = WakeStressSpec::new(6, 9);
        let trace = spec.generate();
        assert_eq!(trace.len() as u64, spec.task_count());
        let mut oracle = OracleResolver::new();
        let mut ready_at_submit = 0;
        for t in &trace.tasks {
            if oracle.submit(&t.params).1 {
                ready_at_submit += 1;
            }
        }
        assert_eq!(
            ready_at_submit, spec.producers,
            "exactly the producers may start immediately"
        );
        // Each producer's completion wakes its whole consumer burst.
        for id in oracle.ready_set() {
            let woken = oracle.finish(id);
            assert_eq!(woken.len() as u32, spec.consumers_per, "producer {id}");
            for w in woken {
                assert!(oracle.finish(w).is_empty(), "consumers wake nobody");
            }
        }
        assert!(oracle.all_done());
    }

    #[test]
    fn every_address_hashes_to_the_hot_shard() {
        let spec = WakeStressSpec::new(32, 4);
        for p in 0..spec.producers {
            assert_eq!(
                nexuspp_core::shard_of_addr(spec.producer_addr(p), spec.shards),
                0
            );
        }
    }
}
