//! Edit-heavy stencil workload for the incremental re-execution layer.
//!
//! [`IncrStencilSpec`] builds the same halo-exchange stencil as
//! [`crate::version_stress`] — `cells` resources advanced for `steps`
//! timesteps, each task reading the previous step's `i-1 / i / i+1`
//! versions and minting the next version of cell `i` — but as an
//! editable [`IncrementalProgram`] instead of a one-shot frontend
//! program. It is the workload behind the `incremental` criterion
//! bench and the `repro -- incr` experiment: run it from scratch once,
//! then apply small edit batches ([`touch_edits`]) and measure how much
//! of the graph the incremental layer actually re-executes.
//!
//! The stencil is the interesting shape for this measurement because
//! its dirty cone is *geometric*: touching one cell's initial contents
//! dirties a light-cone that widens by one cell per step, so a single
//! edit on a wide, shallow stencil (the [`thousand`] default:
//! 100 cells × 10 steps) invalidates roughly `steps²` of the
//! `cells × steps` tasks — an order of magnitude less than from
//! scratch — while ten spread-out edits approach full invalidation.
//! Both regimes matter and the bench reports both.
//!
//! [`touch_edits`]: IncrStencilSpec::touch_edits
//! [`thousand`]: IncrStencilSpec::thousand

use nexuspp_core::Priority;
use nexuspp_incr::{Access, Edit, IncrementalProgram};

/// Spec for an editable halo-exchange stencil: `cells` resources
/// advanced `steps` times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IncrStencilSpec {
    /// Number of stencil cells (resources).
    pub cells: u32,
    /// Number of timesteps; each step mints one new version per cell.
    pub steps: u32,
}

impl IncrStencilSpec {
    /// The benchmark default: a wide, shallow 100 × 10 stencil —
    /// 1000 tasks whose single-edit dirty cone is a small fraction of
    /// the program.
    pub fn thousand() -> IncrStencilSpec {
        IncrStencilSpec {
            cells: 100,
            steps: 10,
        }
    }

    /// Total task count: one task per `(cell, step)`.
    pub fn task_count(&self) -> u64 {
        self.cells as u64 * self.steps as u64
    }

    /// Resource name of cell `i`.
    pub fn cell(&self, i: u32) -> String {
        format!("cell{i}")
    }

    /// Stable task key for the task advancing cell `i` at timestep `t`
    /// (`t` is 1-based, matching the version it mints).
    pub fn key(&self, i: u32, t: u32) -> u64 {
        t as u64 * self.cells as u64 + i as u64
    }

    /// The edit list that declares the whole stencil, step-major: the
    /// task for `(i, t)` pins version `t - 1` of its halo neighbours
    /// and writes cell `i` (minting version `t`).
    pub fn decl_edits(&self) -> Vec<Edit> {
        let mut edits = Vec::with_capacity(self.task_count() as usize);
        for t in 1..=self.steps {
            for i in 0..self.cells {
                let mut accesses = Vec::with_capacity(4);
                if i > 0 {
                    accesses.push(Access::ReadVersion(self.cell(i - 1), t - 1));
                }
                accesses.push(Access::ReadVersion(self.cell(i), t - 1));
                if i + 1 < self.cells {
                    accesses.push(Access::ReadVersion(self.cell(i + 1), t - 1));
                }
                accesses.push(Access::Write(self.cell(i)));
                edits.push(Edit::AddTask {
                    key: self.key(i, t),
                    fptr: 0x5000 + (i as u64 % 7) * 0x10,
                    priority: Priority::Normal,
                    accesses,
                });
            }
        }
        edits
    }

    /// Build the stencil as one batch edit on a fresh program. The
    /// memo store is empty, so the first `rerun` is the from-scratch
    /// baseline.
    pub fn build(&self) -> IncrementalProgram {
        let mut ip = IncrementalProgram::new();
        ip.edit_batch(self.decl_edits())
            .expect("stencil declarations are acyclic");
        ip
    }

    /// A deterministic batch of `count` initial-contents edits on
    /// evenly spaced cells, with seeds varied by `round` so repeated
    /// rounds keep producing genuinely new contents (a repeated seed
    /// would hit the early-cutoff path and re-run nothing).
    pub fn touch_edits(&self, count: u32, round: u64) -> Vec<Edit> {
        let count = count.clamp(1, self.cells);
        (0..count)
            .map(|k| {
                let i = (k * self.cells) / count;
                Edit::SetInitial {
                    resource: self.cell(i),
                    seed: 1 + round * 131 + k as u64,
                }
            })
            .collect()
    }

    /// Upper bound on the single-edit dirty cone rooted at cell `i`,
    /// step 1: the light-cone widens by one cell per step, clipped at
    /// the boundary. Used by tests to pin the cone's geometry.
    pub fn cone_bound(&self, i: u32) -> u64 {
        (1..=self.steps)
            .map(|t| {
                let lo = i.saturating_sub(t);
                let hi = (i + t).min(self.cells - 1);
                (hi - lo + 1) as u64
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexuspp_frontend::Lowering;
    use nexuspp_incr::Backend;

    #[test]
    fn builds_the_full_stencil() {
        let spec = IncrStencilSpec { cells: 8, steps: 4 };
        let ip = spec.build();
        assert_eq!(ip.len() as u64, spec.task_count());
        // Interior task (i, t) has 3 halo producers at step t-1.
        let producers: Vec<u64> = ip
            .edges()
            .into_iter()
            .filter(|&(_, to)| to == spec.key(3, 2))
            .map(|(f, _)| f)
            .collect();
        assert_eq!(
            producers,
            vec![spec.key(2, 1), spec.key(3, 1), spec.key(4, 1)]
        );
    }

    #[test]
    fn single_edit_cone_is_the_light_cone() {
        let spec = IncrStencilSpec {
            cells: 16,
            steps: 5,
        };
        let mut ip = spec.build();
        let first = ip.rerun(Lowering::Renamed, &Backend::Engine { shards: 2 });
        assert_eq!(first.reran as u64, spec.task_count());

        let i = 7;
        ip.edit_batch(spec.touch_edits(1, 0)).unwrap();
        // touch_edits(1, _) touches cell 0 of the even spacing — also
        // touch an explicit interior cell to check the two-sided cone.
        ip.edit(Edit::SetInitial {
            resource: spec.cell(i),
            seed: 424242,
        })
        .unwrap();
        let cone = ip.dirty_cone();
        // Every cone member sits inside the light-cone |i' - root| <= t
        // of one of the touched cells (0 and 7).
        for &k in &cone {
            let t = (k / spec.cells as u64) as u32;
            let c = (k % spec.cells as u64) as u32;
            let within = |root: u32| (c as i64 - root as i64).unsigned_abs() <= t as u64;
            assert!(
                within(0) || within(i),
                "key {k} (cell {c}, step {t}) outside both cones"
            );
        }
        assert!((cone.len() as u64) <= spec.cone_bound(0) + spec.cone_bound(i));

        let second = ip.rerun(Lowering::Renamed, &Backend::Engine { shards: 2 });
        assert_eq!((second.reran + second.reused) as u64, spec.task_count());
        assert!(second.reran <= cone.len());
        assert!((second.reran as u64) < spec.task_count());
    }

    #[test]
    fn repeated_rounds_keep_dirtying() {
        let spec = IncrStencilSpec {
            cells: 10,
            steps: 3,
        };
        let mut ip = spec.build();
        ip.rerun(Lowering::Renamed, &Backend::Engine { shards: 2 });
        for round in 0..3 {
            ip.edit_batch(spec.touch_edits(2, round)).unwrap();
            let rep = ip.rerun(Lowering::Renamed, &Backend::Engine { shards: 2 });
            assert!(rep.reran > 0, "round {round} reran nothing");
            assert!(rep.reused > 0, "round {round} reused nothing");
        }
        // Re-applying the *same* seeds is a semantic no-op: the cone is
        // validated but early cutoff reuses everything.
        ip.edit_batch(spec.touch_edits(2, 2)).unwrap();
        let rep = ip.rerun(Lowering::Renamed, &Backend::Engine { shards: 2 });
        assert_eq!(rep.reran, 0);
        assert!(rep.dirtied > 0);
    }
}
