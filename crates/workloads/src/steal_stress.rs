//! The steal-stress workload: an imbalanced fan-out that makes work
//! stealing *mandatory* for any parallel speedup.
//!
//! Shape: one root task writes a seed address; `chains` chain-head tasks
//! each read the seed and take write ownership of their chain's cell
//! address; every subsequent chain task accesses its cell `inout`, so
//! each chain is strictly serial. The dependency graph is therefore a
//! single burst point — whoever retires the root wakes *every* chain head
//! at once — followed by long runs of one-wakes-one tasks.
//!
//! Under a centralized ready queue the burst and every subsequent wake
//! funnel through the same lock; under per-worker deques the burst lands
//! on the finishing worker's deque and other workers must steal chains to
//! contribute — which is exactly what `nexuspp_sched`'s stealing path
//! optimizes for and what its steal counters make visible. The same DAG
//! is generated here as an address trace so the dependency engines, the
//! cycle simulator, and the threaded runtimes can all consume it; the
//! scheduler-level harness in `nexuspp_sched::stress` replays the
//! identical structure directly.

use nexuspp_desim::SimTime;
use nexuspp_trace::{MemCost, Param, TaskRecord, Trace};

/// Parameters of the steal-stress stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealStressSpec {
    /// Parallel chains fanned out by the root.
    pub chains: u32,
    /// Serial tasks per chain.
    pub chain_len: u32,
    /// Pure execution time per task.
    pub exec_ns: u64,
}

impl StealStressSpec {
    /// A spec sized so `workers` workers stay fed once chains distribute
    /// (two chains per worker).
    pub fn for_workers(workers: u32, chain_len: u32) -> Self {
        StealStressSpec {
            chains: 2 * workers.max(1),
            chain_len,
            exec_ns: 0,
        }
    }

    /// Total tasks including the root.
    pub fn task_count(&self) -> u64 {
        1 + self.chains as u64 * self.chain_len as u64
    }

    /// The root's seed address.
    pub fn root_addr(&self) -> u64 {
        0xD000_0000
    }

    /// Chain `c`'s cell address.
    pub fn chain_addr(&self, c: u32) -> u64 {
        0xD100_0000 + c as u64 * 0x100
    }

    /// Generate the trace: task ids match the scheduler-level harness
    /// encoding (0 is the root; chain `c` step `i` is
    /// `1 + c·chain_len + i`).
    pub fn generate(&self) -> Trace {
        assert!(self.chains >= 1, "need at least one chain");
        assert!(self.chain_len >= 1, "chains need at least one task");
        let task = |id: u64, params: Vec<Param>| TaskRecord {
            id,
            fptr: 0x57EA,
            params,
            exec: SimTime::from_ns(self.exec_ns),
            read: MemCost::None,
            write: MemCost::None,
        };
        let mut tasks = Vec::with_capacity(self.task_count() as usize);
        tasks.push(task(0, vec![Param::output(self.root_addr(), 64)]));
        for c in 0..self.chains {
            let cell = self.chain_addr(c);
            for i in 0..self.chain_len {
                let id = 1 + c as u64 * self.chain_len as u64 + i as u64;
                let params = if i == 0 {
                    vec![Param::input(self.root_addr(), 64), Param::inout(cell, 16)]
                } else {
                    vec![Param::inout(cell, 16)]
                };
                tasks.push(task(id, params));
            }
        }
        Trace::from_tasks(
            format!("steal-stress-{}x{}", self.chains, self.chain_len),
            tasks,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexuspp_core::oracle::OracleResolver;

    #[test]
    fn only_root_is_initially_ready_and_burst_follows() {
        let spec = StealStressSpec {
            chains: 4,
            chain_len: 10,
            exec_ns: 0,
        };
        let trace = spec.generate();
        assert_eq!(trace.len() as u64, spec.task_count());
        let mut oracle = OracleResolver::new();
        let mut ready_at_submit = 0;
        for t in &trace.tasks {
            let (_, ready) = oracle.submit(&t.params);
            if ready {
                ready_at_submit += 1;
            }
        }
        assert_eq!(ready_at_submit, 1, "only the root may start immediately");
        // Finishing the root wakes exactly the chain heads — the
        // single-producer burst.
        let mut ready = oracle.ready_set();
        assert_eq!(ready.len(), 1);
        let woken = oracle.finish(ready.pop().unwrap());
        assert_eq!(
            woken.len() as u32,
            spec.chains,
            "root completion must release every chain head at once"
        );
    }

    #[test]
    fn chains_serialize_and_drain_completely() {
        let spec = StealStressSpec {
            chains: 3,
            chain_len: 8,
            exec_ns: 0,
        };
        let trace = spec.generate();
        let mut oracle = OracleResolver::new();
        for t in &trace.tasks {
            oracle.submit(&t.params);
        }
        let mut ready = oracle.ready_set();
        let mut done = 0u64;
        while let Some(id) = ready.pop() {
            done += 1;
            let woken = oracle.finish(id);
            // A chain task wakes at most its successor; the root wakes
            // the heads.
            assert!(woken.len() as u32 <= spec.chains);
            ready.extend(woken);
            // Never more ready than one per chain (strict serialization).
            assert!(ready.len() as u32 <= spec.chains);
        }
        assert_eq!(done, spec.task_count());
        assert!(oracle.all_done());
    }

    #[test]
    fn worker_sizing_keeps_every_worker_fed() {
        let spec = StealStressSpec::for_workers(4, 100);
        assert_eq!(spec.chains, 8);
        assert_eq!(spec.task_count(), 801);
    }
}
