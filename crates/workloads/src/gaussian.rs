//! Gaussian elimination with partial pivoting (Figure 5, Table II).
//!
//! "The execution starts with one task (T11), on which n−1 tasks
//! (T21..Tn1) depend. After that only one task (T22) can execute, and then
//! n−2 tasks, etc. Total number of tasks is relative to the matrix size,
//! and equals (n²+n−2)/2."
//!
//! We model the factorization column-wise as in LINPACK's `dgefa`: step `i`
//! has a pivot task `T_ii` (pivot search + scale, weight `n+1−i` FLOPs)
//! with `inout(col_i)`, and update tasks `T_ji` for `j > i` (weight `n−i`
//! FLOPs) with `input(col_i), inout(col_j)`. The final trivial pivot
//! `T_nn` is omitted, which yields exactly the paper's task count. The
//! fan-out of `col_i` to its `n−i` update readers is what overflows the
//! 8-slot Kick-Off Lists and validates the dummy-entry mechanism; the WAW
//! chain on each `col_j` across steps serializes a column's updates.
//!
//! Per the paper: "Each task performs \[W\] floating point operations […]
//! Hence the duration of a task Tji equals W(Tji) divided by the GFLOPS of
//! one core. Each task also reads W(Tji) floating point numbers from
//! memory, and writes the same number back when finished." Durations use
//! the configured GFLOPS (2 per core in §V); memory volumes are expressed
//! as byte counts (`MemCost::Bytes`) and timed by the banked memory model.
//! Tasks are generated in serial execution order: `T11, T21 … Tn1, T22, …`.
//!
//! For n = 5000 the trace has 12 502 499 tasks, so [`GaussianSource`]
//! synthesizes tasks on demand instead of materializing them.

use nexuspp_core::TaskBuilder;
use nexuspp_desim::SimTime;
use nexuspp_trace::{MemCost, TaskRecord, Trace, TraceSource};

/// Gaussian-elimination benchmark parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianSpec {
    /// Matrix dimension `n` (250–5000 in Table II).
    pub n: u32,
    /// Per-core floating-point rate ("Each single worker core is assumed to
    /// be able to do 2 GFLOPS").
    pub gflops_per_core: f64,
    /// Bytes per element (8 — LINPACK operates on doubles).
    pub elem_bytes: u32,
    /// Base address of the matrix columns.
    pub base_addr: u64,
}

impl GaussianSpec {
    /// The paper's configuration for a given matrix dimension.
    pub fn new(n: u32) -> Self {
        assert!(n >= 2, "need at least a 2×2 matrix");
        GaussianSpec {
            n,
            gflops_per_core: 2.0,
            elem_bytes: 8,
            base_addr: 0x4000_0000,
        }
    }

    /// Total task count: `(n² + n − 2) / 2` (Table II).
    pub fn task_count(&self) -> u64 {
        let n = self.n as u64;
        (n * n + n - 2) / 2
    }

    /// Weight of task `T_ji` in FLOPs (Formula 1 of the paper; 1-based
    /// `i`, `j`).
    pub fn weight(&self, j: u32, i: u32) -> u64 {
        debug_assert!(i >= 1 && j >= i && j <= self.n);
        let n = self.n as u64;
        if i == j {
            n + 1 - i as u64
        } else {
            n - i as u64
        }
    }

    /// Sum of all task weights in FLOPs.
    pub fn total_flops(&self) -> u64 {
        let n = self.n as u64;
        // Pivots i = 1..n-1: Σ (n+1−i); updates per i: (n−i)·(n−i).
        (1..n).map(|i| (n + 1 - i) + (n - i) * (n - i)).sum()
    }

    /// Average task weight in FLOPs (Table II's right column).
    pub fn avg_weight(&self) -> f64 {
        self.total_flops() as f64 / self.task_count() as f64
    }

    /// Average task duration implied by `gflops_per_core` (the paper
    /// quotes 1.77 µs for n = 5000).
    pub fn avg_task_time(&self) -> SimTime {
        SimTime::from_ns_f64(self.avg_weight() / self.gflops_per_core)
    }

    /// Address of column `j` (1-based).
    pub fn col_addr(&self, j: u32) -> u64 {
        debug_assert!(j >= 1 && j <= self.n);
        self.base_addr + (j as u64 - 1) * (self.n as u64 * self.elem_bytes as u64)
    }

    fn make_task(&self, id: u64, j: u32, i: u32) -> TaskRecord {
        let w = self.weight(j, i);
        let bytes = w * self.elem_bytes as u64;
        let col_bytes = self.n * self.elem_bytes;
        let t = if i == j {
            // Pivot kernel.
            TaskBuilder::new(0x6A05).read_writes(self.col_addr(i), col_bytes)
        } else {
            // Update kernel.
            TaskBuilder::new(0x6A06)
                .reads(self.col_addr(i), col_bytes)
                .read_writes(self.col_addr(j), col_bytes)
        };
        t.tag(id).record(
            SimTime::from_ns_f64(w as f64 / self.gflops_per_core),
            MemCost::Bytes(bytes),
            MemCost::Bytes(bytes),
        )
    }

    /// Streaming source generating tasks in serial execution order.
    pub fn source(&self) -> GaussianSource {
        GaussianSource {
            spec: *self,
            i: 1,
            j: 1,
            id: 0,
        }
    }

    /// Materialized trace (small `n` only — n=1000 is already 500K tasks).
    pub fn trace(&self) -> Trace {
        let mut src = self.source();
        let mut tasks = Vec::with_capacity(self.task_count() as usize);
        while let Some(t) = src.next_task() {
            tasks.push(t);
        }
        Trace::from_tasks(format!("gaussian-{}", self.n), tasks)
    }
}

/// Streaming [`TraceSource`] for the Gaussian benchmark.
#[derive(Debug, Clone)]
pub struct GaussianSource {
    spec: GaussianSpec,
    /// Current elimination step (1-based); `n` means exhausted.
    i: u32,
    /// Next row task within the step (`j == i` is the pivot).
    j: u32,
    id: u64,
}

impl TraceSource for GaussianSource {
    fn next_task(&mut self) -> Option<TaskRecord> {
        let n = self.spec.n;
        if self.i >= n {
            return None;
        }
        let (i, j) = (self.i, self.j);
        let task = self.spec.make_task(self.id, j, i);
        self.id += 1;
        // Advance: pivot T_ii, then updates T_(i+1..n),i, then next step.
        if self.j < n {
            self.j += 1;
        } else {
            self.i += 1;
            self.j = self.i;
        }
        Some(task)
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.spec.task_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table II of the paper.
    const TABLE_II: [(u32, u64, f64); 5] = [
        (250, 31_374, 167.0),
        (500, 125_249, 334.0),
        (1000, 500_499, 667.0),
        (3000, 4_501_499, 2012.0),
        (5000, 12_502_499, 3523.0),
    ];

    #[test]
    fn table_ii_task_counts_exact() {
        for (n, count, _) in TABLE_II {
            assert_eq!(GaussianSpec::new(n).task_count(), count, "n = {n}");
        }
    }

    #[test]
    fn table_ii_average_weights_close() {
        // Formula 1 reproduces Table II's averages within 0.7% for
        // n ≤ 3000. The n = 5000 row (3523) is inconsistent with the
        // paper's own Formula 1, which yields 3332.7 — a paper-internal
        // discrepancy documented in EXPERIMENTS.md; we follow the formula.
        for (n, _, avg) in TABLE_II {
            let ours = GaussianSpec::new(n).avg_weight();
            let rel = (ours - avg).abs() / avg;
            let tol = if n == 5000 { 0.06 } else { 0.01 };
            assert!(
                rel < tol,
                "n = {n}: ours {ours:.1} vs paper {avg} ({rel:.3})"
            );
        }
        // Pin the exact Formula-1 values so regressions are caught.
        assert!((GaussianSpec::new(250).avg_weight() - 166.013).abs() < 1e-3);
        assert!((GaussianSpec::new(5000).avg_weight() - 3332.667).abs() < 1e-3);
    }

    #[test]
    fn avg_task_time_matches_paper_for_5000() {
        // The paper quotes 1.77 µs average for n = 5000 at 2 GFLOPS
        // (consistent with its Table II average of 3523 FLOPs); Formula 1
        // gives 3332.7 FLOPs → 1.67 µs. We assert the Formula-1 value and
        // that it lands within 6% of the quoted figure.
        let t = GaussianSpec::new(5000).avg_task_time();
        assert!((t.as_us_f64() - 1.666).abs() < 0.01, "got {t}");
        assert!((t.as_us_f64() - 1.77).abs() / 1.77 < 0.06);
        // "the 250×250 has very small tasks (83.5 ns per task on average)".
        let t = GaussianSpec::new(250).avg_task_time();
        assert!((t.as_ns_f64() - 83.5).abs() < 1.0, "got {t}");
    }

    #[test]
    fn source_generates_exactly_task_count() {
        let spec = GaussianSpec::new(40);
        let mut src = spec.source();
        let mut count = 0u64;
        while src.next_task().is_some() {
            count += 1;
        }
        assert_eq!(count, spec.task_count());
        assert_eq!(src.len_hint(), Some(spec.task_count()));
    }

    #[test]
    fn generation_order_is_serial_execution_order() {
        let spec = GaussianSpec::new(4);
        let t = spec.trace();
        // T11, T21, T31, T41, T22, T32, T42, T33, T43 — 9 tasks; T44 omitted.
        assert_eq!(t.len(), 9);
        // Pivots have 1 param, updates 2.
        let shape: Vec<usize> = t.tasks.iter().map(|x| x.params.len()).collect();
        assert_eq!(shape, vec![1, 2, 2, 2, 1, 2, 2, 1, 2]);
    }

    #[test]
    fn weights_follow_formula_one() {
        let spec = GaussianSpec::new(10);
        assert_eq!(spec.weight(1, 1), 10); // W(T11) = n+1-1
        assert_eq!(spec.weight(5, 1), 9); // off-diagonal: n-i
        assert_eq!(spec.weight(9, 9), 2);
        assert_eq!(spec.weight(10, 9), 1);
    }

    #[test]
    fn fan_out_matches_figure_five() {
        use nexuspp_core::oracle::OracleResolver;
        let spec = GaussianSpec::new(6);
        let trace = spec.trace();
        let mut oracle = OracleResolver::new();
        let mut ready_flags = Vec::new();
        for t in &trace.tasks {
            let (_, r) = oracle.submit(&t.params);
            ready_flags.push(r);
        }
        // Only T11 is ready at submission; every later task depends on its
        // step's pivot (or, for pivots, on the previous step's update).
        assert!(ready_flags[0]);
        assert_eq!(ready_flags.iter().filter(|&&r| r).count(), 1);
        // T11 unblocks exactly the n−1 = 5 update tasks of step 1.
        let woken = oracle.finish(0);
        assert_eq!(woken.len(), 5);
    }

    #[test]
    fn exec_times_scale_with_weight() {
        let spec = GaussianSpec::new(100);
        let tr = spec.trace();
        // Pivot T11: weight 100 FLOPs / 2 GFLOPS = 50 ns.
        assert_eq!(tr.tasks[0].exec, SimTime::from_ns(50));
        // Update T21: weight 99 → 49.5 ns.
        assert_eq!(tr.tasks[1].exec, SimTime::from_ps(49_500));
        // Memory: W doubles each way.
        assert_eq!(tr.tasks[0].read, MemCost::Bytes(800));
        assert_eq!(tr.tasks[0].write, MemCost::Bytes(800));
    }

    #[test]
    fn columns_do_not_alias() {
        let spec = GaussianSpec::new(64);
        let mut addrs = std::collections::HashSet::new();
        for j in 1..=64 {
            assert!(addrs.insert(spec.col_addr(j)));
        }
    }
}
