//! The version-stress workload: rename-heavy declarative programs where
//! the gap between the frontend's two lowerings is the whole point.
//!
//! Two shapes, both built through the resource-versioning frontend
//! (`nexuspp-frontend`) rather than hand-addressed:
//!
//! * **Version chains** — `chains` resources, each written
//!   `chain_len` times by `writes`-only tasks (a producer refilling a
//!   buffer). There are **no reads**, so under [`Lowering::Renamed`]
//!   every write gets its own address and all `chains × chain_len`
//!   tasks are independent; under [`Lowering::Raw`] each chain
//!   serializes through the Dependence Table's output-dependence (`ww`)
//!   tracking — the classic WAW false-dependency tax.
//! * **Halo-exchange stencil** — a 1-D Jacobi sweep: `cells` resources,
//!   `steps` timesteps, task `(i, t)` reading the step-`t−1` versions
//!   of cells `i−1, i, i+1` (version pins) and writing cell `i`. The
//!   true dependencies form a wavefront of width `cells`; the raw
//!   encoding adds WAR/WAW serialization between consecutive steps.
//!
//! The structural claim — renaming buys ≥ 2× available parallelism —
//! is asserted by `parallelism_profile` over both lowered traces in
//! this module's tests; the *measured* claim (executed-width on a
//! 4-worker `ShardedRuntime` at least doubles) lives
//! in `tests/version_parallelism.rs`.

use nexuspp_desim::SimTime;
use nexuspp_frontend::{LoweredProgram, Lowering, Program};
use nexuspp_trace::{MemCost, Trace};

/// Parameters of the version-stress program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionStressSpec {
    /// Independent write-only version chains.
    pub chains: u32,
    /// Writes per chain (the WAW depth the raw lowering serializes).
    pub chain_len: u32,
    /// Stencil cells (0 disables the stencil).
    pub cells: u32,
    /// Stencil timesteps.
    pub steps: u32,
    /// Pure execution time per task (carried onto trace records).
    pub exec_ns: u64,
}

impl VersionStressSpec {
    /// The default rename-heavy mix: 32 chains of depth 32 plus a
    /// 12-cell, 6-step stencil.
    pub fn renaming_heavy() -> Self {
        VersionStressSpec {
            chains: 32,
            chain_len: 32,
            cells: 12,
            steps: 6,
            exec_ns: 0,
        }
    }

    /// A single deep chain: the starkest case — strictly serial raw,
    /// fully independent renamed. Used by the measured-width test.
    pub fn single_chain(chain_len: u32) -> Self {
        VersionStressSpec {
            chains: 1,
            chain_len,
            cells: 0,
            steps: 0,
            exec_ns: 0,
        }
    }

    /// Total declared tasks.
    pub fn task_count(&self) -> u64 {
        u64::from(self.chains) * u64::from(self.chain_len)
            + u64::from(self.cells) * u64::from(self.steps)
    }

    /// Build the declarative program (chains first, then the stencil,
    /// step-major so every version pin references minted history).
    pub fn program(&self) -> Program {
        let mut p = Program::new();
        let mut tag = 0u64;
        for c in 0..self.chains {
            let name = format!("chain{c}");
            for _ in 0..self.chain_len {
                p.task(0x7E10).tag(tag).writes(&name).submit().unwrap();
                tag += 1;
            }
        }
        if self.cells > 0 {
            let cell = |i: u32| format!("cell{i}");
            for i in 0..self.cells {
                p.resource(&cell(i));
            }
            for t in 1..=self.steps {
                for i in 0..self.cells {
                    let mut b = p.task(0x7E57).tag(tag);
                    if i > 0 {
                        b = b.reads_version(&cell(i - 1), t - 1);
                    }
                    b = b.reads_version(&cell(i), t - 1);
                    if i + 1 < self.cells {
                        b = b.reads_version(&cell(i + 1), t - 1);
                    }
                    b.writes(&cell(i)).submit().unwrap();
                    tag += 1;
                }
            }
        }
        p
    }

    /// Lower the program under the given address mapping.
    pub fn lowered(&self, lowering: Lowering) -> LoweredProgram {
        self.program()
            .lower(lowering)
            .expect("version-stress pins always reference minted history")
    }

    /// The lowered program as an address trace (for the timing models
    /// and `parallelism_profile`).
    pub fn trace(&self, lowering: Lowering) -> Trace {
        let lp = self.lowered(lowering);
        let exec = SimTime::from_ns(self.exec_ns);
        let tasks = lp
            .tasks
            .into_iter()
            .map(|s| s.into_record(exec, MemCost::None, MemCost::None))
            .collect();
        Trace::from_tasks(
            format!(
                "version-stress-{}x{}c{}s{}-{}",
                self.chains,
                self.chain_len,
                self.cells,
                self.steps,
                lowering.name()
            ),
            tasks,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::parallelism_profile;

    #[test]
    fn renaming_at_least_doubles_available_parallelism() {
        let spec = VersionStressSpec::renaming_heavy();
        let renamed = parallelism_profile(&spec.trace(Lowering::Renamed));
        let raw = parallelism_profile(&spec.trace(Lowering::Raw));
        assert_eq!(renamed.tasks as u64, spec.task_count());
        assert_eq!(raw.tasks as u64, spec.task_count());
        assert!(
            renamed.avg_parallelism() >= 2.0 * raw.avg_parallelism(),
            "avg: renamed {:.1} vs raw {:.1}",
            renamed.avg_parallelism(),
            raw.avg_parallelism()
        );
        assert!(
            renamed.max_parallelism() >= 2 * raw.max_parallelism(),
            "max: renamed {} vs raw {}",
            renamed.max_parallelism(),
            raw.max_parallelism()
        );
        // And renaming shortens the critical path to the stencil depth.
        assert_eq!(renamed.critical_path() as u32, spec.steps.max(1));
        assert!(raw.critical_path() as u32 >= spec.chain_len);
    }

    #[test]
    fn chain_structure_is_serial_raw_and_flat_renamed() {
        let spec = VersionStressSpec::single_chain(16);
        let renamed = parallelism_profile(&spec.trace(Lowering::Renamed));
        assert_eq!(renamed.critical_path(), 1);
        assert_eq!(renamed.max_parallelism(), 16);
        let raw = parallelism_profile(&spec.trace(Lowering::Raw));
        assert_eq!(raw.critical_path(), 16, "WAW serializes the raw chain");
        assert_eq!(raw.max_parallelism(), 1);
    }

    #[test]
    fn stencil_wavefront_has_cells_width_per_step() {
        let spec = VersionStressSpec {
            chains: 0,
            chain_len: 0,
            cells: 9,
            steps: 5,
            exec_ns: 0,
        };
        let renamed = parallelism_profile(&spec.trace(Lowering::Renamed));
        assert_eq!(renamed.critical_path(), 5);
        assert!(renamed.widths.iter().all(|&w| w == 9));
        let raw = parallelism_profile(&spec.trace(Lowering::Raw));
        assert!(raw.critical_path() > 5, "raw adds false inter-step hazards");
    }

    #[test]
    fn traces_are_reproducible_and_named() {
        let spec = VersionStressSpec::renaming_heavy();
        let a = spec.trace(Lowering::Renamed);
        let b = spec.trace(Lowering::Renamed);
        assert_eq!(a.tasks, b.tasks);
        assert!(a.name.contains("renamed"));
        assert!(spec.trace(Lowering::Raw).name.contains("raw"));
    }
}
