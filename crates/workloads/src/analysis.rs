//! Task-graph analytics.
//!
//! Figure 4's captions describe each benchmark by its *available
//! parallelism over time* ("Initially there is only one task ready for
//! execution, but this number increases until halfway execution, after
//! which it decreases again"). [`parallelism_profile`] recomputes that
//! curve: execute the task graph in greedy unit-time rounds (every ready
//! task runs for exactly one round) and record the width of each round.
//! The profile's maximum bounds achievable speedup; its mean
//! (tasks / rounds) is the average parallelism that explains why the
//! H.264 wavefront saturates in Figure 7.

use nexuspp_core::oracle::OracleResolver;
use nexuspp_trace::Trace;

/// Summary of a task graph's structure.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphProfile {
    /// Ready-set width per greedy round (the Fig 4 ramp curve).
    pub widths: Vec<usize>,
    /// Total tasks.
    pub tasks: usize,
}

impl GraphProfile {
    /// Length of the critical path in tasks (number of rounds).
    pub fn critical_path(&self) -> usize {
        self.widths.len()
    }

    /// Maximum available parallelism.
    pub fn max_parallelism(&self) -> usize {
        self.widths.iter().copied().max().unwrap_or(0)
    }

    /// Average parallelism (tasks / critical path) — the quantity that
    /// caps wavefront scalability (8160 / 306 ≈ 27 for the paper's frame).
    pub fn avg_parallelism(&self) -> f64 {
        if self.widths.is_empty() {
            0.0
        } else {
            self.tasks as f64 / self.widths.len() as f64
        }
    }
}

/// Compute the greedy-rounds parallelism profile of a trace.
pub fn parallelism_profile(trace: &Trace) -> GraphProfile {
    let mut oracle = OracleResolver::new();
    for t in &trace.tasks {
        oracle.submit(&t.params);
    }
    let mut widths = Vec::new();
    while !oracle.all_done() {
        let ready = oracle.ready_set();
        assert!(!ready.is_empty(), "cyclic task graph");
        widths.push(ready.len());
        for id in ready {
            oracle.finish(id);
        }
    }
    GraphProfile {
        widths,
        tasks: trace.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{GridPattern, GridSpec};

    #[test]
    fn wavefront_ramp_shape() {
        let g = GridSpec::default();
        let p = parallelism_profile(&g.generate(GridPattern::Wavefront));
        // Critical path for the (i,j-1)+(i-1,j+1) stencil on 120×68:
        // max(2i + j) + 1 = 2·119 + 67 + 1 = 306.
        assert_eq!(p.critical_path(), 306);
        assert_eq!(p.widths[0], 1, "ramp starts with one ready task");
        assert!((p.avg_parallelism() - 8160.0 / 306.0).abs() < 1e-9);
        // Ramp: rises then falls.
        let peak_at = p
            .widths
            .iter()
            .enumerate()
            .max_by_key(|(_, &w)| w)
            .unwrap()
            .0;
        assert!(
            peak_at > 50 && peak_at < 256,
            "peak mid-execution, at {peak_at}"
        );
        assert!(p.max_parallelism() >= 30);
        assert_eq!(*p.widths.last().unwrap(), 1, "ramp ends with one task");
    }

    #[test]
    fn horizontal_constant_width_rows() {
        let g = GridSpec::small(6, 10);
        let p = parallelism_profile(&g.generate(GridPattern::Horizontal));
        // All 6 row chains advance together: 10 rounds of width 6.
        assert_eq!(p.critical_path(), 10);
        assert_eq!(p.max_parallelism(), 6);
        assert!(p.widths.iter().all(|&w| w == 6));
    }

    #[test]
    fn vertical_constant_width_cols() {
        let g = GridSpec::small(6, 10);
        let p = parallelism_profile(&g.generate(GridPattern::Vertical));
        assert_eq!(p.critical_path(), 6);
        assert!(p.widths.iter().all(|&w| w == 10));
    }

    #[test]
    fn independent_is_one_round() {
        let g = GridSpec::small(8, 8);
        let p = parallelism_profile(&g.generate(GridPattern::Independent));
        assert_eq!(p.critical_path(), 1);
        assert_eq!(p.max_parallelism(), 64);
    }

    #[test]
    fn gaussian_profile_alternates() {
        use crate::gaussian::GaussianSpec;
        let p = parallelism_profile(&GaussianSpec::new(8).trace());
        // Figure 5: 1, n−1, 1, n−2, … pivot/update alternation.
        assert_eq!(p.widths[0], 1);
        assert_eq!(p.widths[1], 7);
        assert_eq!(p.widths[2], 1);
        assert_eq!(p.widths[3], 6);
        assert_eq!(*p.widths.last().unwrap(), 1);
    }
}
