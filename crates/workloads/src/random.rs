//! Seeded random task streams, for fuzz-style tests and microbenchmarks.

use nexuspp_desim::{Rng, SimTime};
use nexuspp_trace::normalize::normalize_params;
use nexuspp_trace::{AccessMode, MemCost, Param, TaskRecord, Trace};

/// Parameters for a random workload.
#[derive(Debug, Clone, Copy)]
pub struct RandomSpec {
    /// Number of tasks.
    pub n_tasks: u32,
    /// Distinct addresses (smaller ⇒ more hazards).
    pub addr_space: u32,
    /// Maximum parameters per task (inclusive).
    pub max_params: u32,
    /// Execution time per task in nanoseconds (constant).
    pub exec_ns: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomSpec {
    fn default() -> Self {
        RandomSpec {
            n_tasks: 1000,
            addr_space: 64,
            max_params: 4,
            exec_ns: 1000,
            seed: 0xFEED,
        }
    }
}

impl RandomSpec {
    /// Generate the trace (parameter lists normalized: no duplicate
    /// addresses within a task).
    pub fn generate(&self) -> Trace {
        let mut rng = Rng::new(self.seed);
        let mut tasks = Vec::with_capacity(self.n_tasks as usize);
        for id in 0..self.n_tasks as u64 {
            let n = 1 + rng.gen_range(self.max_params as u64);
            let params: Vec<Param> = (0..n)
                .map(|_| {
                    let addr = 0xC000_0000 + rng.gen_range(self.addr_space as u64) * 256;
                    let mode = match rng.gen_range(3) {
                        0 => AccessMode::In,
                        1 => AccessMode::Out,
                        _ => AccessMode::InOut,
                    };
                    Param::new(addr, 64, mode)
                })
                .collect();
            tasks.push(TaskRecord {
                id,
                fptr: 0xF422,
                params: normalize_params(&params),
                exec: SimTime::from_ns(self.exec_ns),
                read: MemCost::None,
                write: MemCost::None,
            });
        }
        Trace::from_tasks(
            format!("random-{}t-{}a", self.n_tasks, self.addr_space),
            tasks,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_normalized() {
        let a = RandomSpec::default().generate();
        let b = RandomSpec::default().generate();
        assert_eq!(a, b);
        for t in &a.tasks {
            let mut addrs: Vec<u64> = t.params.iter().map(|p| p.addr).collect();
            addrs.sort_unstable();
            addrs.dedup();
            assert_eq!(
                addrs.len(),
                t.params.len(),
                "duplicate address in task {}",
                t.id
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = RandomSpec::default().generate();
        let b = RandomSpec {
            seed: 1,
            ..Default::default()
        }
        .generate();
        assert_ne!(a, b);
    }

    #[test]
    fn respects_bounds() {
        let spec = RandomSpec {
            n_tasks: 200,
            addr_space: 8,
            max_params: 3,
            ..Default::default()
        };
        let t = spec.generate();
        assert_eq!(t.len(), 200);
        assert!(t.stats().max_params <= 3);
        let mut addrs = std::collections::HashSet::new();
        for task in &t.tasks {
            for p in &task.params {
                addrs.insert(p.addr);
            }
        }
        assert!(addrs.len() <= 8);
    }
}
