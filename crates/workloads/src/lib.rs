//! # nexuspp-workloads — the paper's benchmarks
//!
//! Generators for every workload in the Nexus++ evaluation (§IV-A):
//!
//! * [`grid`] — the 120×68-macroblock benchmarks of Figure 4: the H.264
//!   wavefront pattern (a), the horizontal- and vertical-dependency
//!   patterns (b)/(c) with a fixed number of parallel tasks, and the
//!   independent-tasks benchmark used for the headline speedups,
//! * [`timing`] — per-task execution/memory time synthesis matching the
//!   published Cell-trace averages (11.8 µs execution, 7.5 µs memory),
//! * [`gaussian`] — Gaussian elimination with partial pivoting (Figure 5 /
//!   Table II): `(n²+n−2)/2` tasks, weight `n+1−i` FLOPs on the diagonal
//!   and `n−i` off it, streaming generation for large matrices,
//! * [`video`] — a multi-frame H.264 extension: P-frames reference the
//!   previous frame, so successive wavefronts pipeline and recover the
//!   parallelism the single-frame ramp loses,
//! * [`stress`] — synthetic stressors for the dummy-task (many-parameter)
//!   and `ww`-flag (write-after-read) mechanisms that the paper's own
//!   benchmarks do not reach,
//! * [`sharded_stress`] — shard-aware address streams with tunable shard
//!   skew and hot-key ratio, driving the sharded resolver's balanced best
//!   case and its pathological single-hot-shard case,
//! * [`capacity_stress`] — deep serial `inout` chains fanned out wider
//!   than any bounded shard table, the stall/retry stressor for the
//!   fixed-capacity resolvers (`ShardCapacity`),
//! * [`steal_stress`] — the imbalanced fan-out (one root releasing many
//!   serial chains at once) that makes work stealing mandatory for
//!   speedup, driving the `nexuspp-sched` scheduler comparison,
//! * [`wake_stress`] — the wide fan-in (many finishers each releasing a
//!   burst of dependents homed on one shard) that concentrates kick-off
//!   traffic on a single wake list, driving the locked-vs-lock-free wake
//!   delivery comparison (`repro -- wakes`),
//! * [`service_stress`] — per-tenant submission programs (serial chains
//!   that occupy admission budget plus immediately-ready independents)
//!   over tenant-scoped address spaces, the client-side workload for the
//!   streaming `ResolverService` ingress (`repro -- serve`),
//! * [`incr_edits`] — an editable halo-exchange stencil for the
//!   incremental re-execution layer (`crates/incr`): build once, apply
//!   deterministic initial-contents edit batches, and measure how much
//!   of the 1000-task graph each edit's light-cone actually re-runs,
//! * [`version_stress`] — rename-heavy declarative programs (write-only
//!   version chains plus a halo-exchange stencil) built through the
//!   resource-versioning frontend, quantifying how much parallelism
//!   version renaming recovers over a raw single-address encoding,
//! * [`random`] — seeded random task streams for tests and fuzzing,
//! * [`analysis`] — task-graph analytics (parallelism profile, critical
//!   path) used to regenerate Figure 4's ramp-effect illustration.

pub mod analysis;
pub mod capacity_stress;
pub mod gaussian;
pub mod grid;
pub mod incr_edits;
pub mod random;
pub mod service_stress;
pub mod sharded_stress;
pub mod steal_stress;
pub mod stress;
pub mod timing;
pub mod version_stress;
pub mod video;
pub mod wake_stress;

pub use capacity_stress::CapacityStressSpec;
pub use gaussian::{GaussianSource, GaussianSpec};
pub use grid::{GridPattern, GridSpec};
pub use incr_edits::IncrStencilSpec;
pub use service_stress::ServiceStressSpec;
pub use sharded_stress::ShardedStressSpec;
pub use steal_stress::StealStressSpec;
pub use timing::H264Timing;
pub use version_stress::VersionStressSpec;
pub use video::VideoSpec;
pub use wake_stress::WakeStressSpec;
