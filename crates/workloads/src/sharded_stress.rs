//! Shard-aware synthetic address streams for the sharded resolver.
//!
//! The sharded engine partitions Dependence-Table traffic by address hash
//! ([`shard_of_addr`]); how well that pays off depends entirely on how
//! the workload's addresses distribute over shards. This generator makes
//! that distribution a knob:
//!
//! * **skew** — fraction of parameters forced onto shard 0. `0.0` is the
//!   balanced best case (addresses spread round-robin over all shards);
//!   `1.0` is the pathological single-hot-shard case where partitioning
//!   buys nothing and every operation serializes behind one shard.
//! * **hot-key ratio** — fraction of tasks that also *read* one shared
//!   hot address (homed on shard 0). This concentrates kick-off-list
//!   traffic on one Dependence-Table entry, the fan-out pressure the
//!   paper's fixed lists cannot absorb; every `hot_period`-th hot task
//!   accesses the key `inout`, rotating write epochs through it so the
//!   stream also exercises the WAR (`ww`) machinery continuously.
//!
//! Addresses are *steered* to shards by rejection-sampling candidate
//! segments against the engine's own router, so the generator stays
//! valid for any hash family the core exports.

use nexuspp_core::shard_of_addr;
use nexuspp_desim::{Rng, SimTime};
use nexuspp_trace::{MemCost, Param, TaskRecord, Trace};

/// Parameters of the sharded stress stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardedStressSpec {
    /// Number of tasks to generate.
    pub n_tasks: u32,
    /// Fresh output parameters per task (excluding the optional hot-key
    /// read).
    pub params_per_task: u32,
    /// Shard count the stream is steered against (must match the
    /// consuming engine's shard count for the skew to mean anything).
    pub shards: u32,
    /// Probability that a parameter is forced onto shard 0 instead of its
    /// round-robin target. 0.0 = balanced, 1.0 = single hot shard.
    pub skew: f64,
    /// Probability that a task additionally touches the shared hot key.
    pub hot_ratio: f64,
    /// Every `hot_period`-th hot task writes (`inout`) the hot key
    /// instead of reading it, rotating the key through write epochs.
    pub hot_period: u32,
    /// Pure execution time per task.
    pub exec_ns: u64,
    /// RNG seed (streams are bit-reproducible).
    pub seed: u64,
}

impl ShardedStressSpec {
    /// The balanced best case: addresses spread evenly, no hot key.
    pub fn balanced(n_tasks: u32, shards: u32) -> Self {
        ShardedStressSpec {
            n_tasks,
            params_per_task: 2,
            shards,
            skew: 0.0,
            hot_ratio: 0.0,
            hot_period: 64,
            exec_ns: 200,
            seed: 0x5AD5_7E55,
        }
    }

    /// The pathological case: every parameter lands on shard 0.
    pub fn hot_shard(n_tasks: u32, shards: u32) -> Self {
        ShardedStressSpec {
            skew: 1.0,
            ..Self::balanced(n_tasks, shards)
        }
    }

    /// Balanced addresses plus a contended hot key read by `hot_ratio` of
    /// the tasks.
    pub fn hot_key(n_tasks: u32, shards: u32, hot_ratio: f64) -> Self {
        ShardedStressSpec {
            hot_ratio,
            ..Self::balanced(n_tasks, shards)
        }
    }

    /// Generate the trace.
    pub fn generate(&self) -> Trace {
        assert!(self.shards >= 1, "need at least one shard");
        assert!(self.params_per_task >= 1, "tasks need at least one output");
        assert!(self.hot_period >= 1, "hot_period must be >= 1");
        let mut rng = Rng::new(self.seed);
        let mut cursor = 0u64; // next candidate segment index
        let stride = 64u64;
        let base = 0xC000_0000u64;
        // Find a segment homed on `target` by walking candidate segments
        // through the engine's own router.
        let mut addr_on_shard = |target: u32| -> u64 {
            loop {
                let addr = base + cursor * stride;
                cursor += 1;
                if shard_of_addr(addr, self.shards as usize) == target as usize {
                    return addr;
                }
            }
        };
        let hot_addr = addr_on_shard(0);
        let mut tasks = Vec::with_capacity(self.n_tasks as usize);
        let mut hot_seen = 0u32;
        let mut rr = 0u32; // round-robin shard cursor
        for id in 0..self.n_tasks as u64 {
            let mut params = Vec::with_capacity(self.params_per_task as usize + 1);
            if self.hot_ratio > 0.0 && rng.gen_f64() < self.hot_ratio {
                hot_seen += 1;
                if hot_seen.is_multiple_of(self.hot_period) {
                    params.push(Param::inout(hot_addr, 64));
                } else {
                    params.push(Param::input(hot_addr, 64));
                }
            }
            for _ in 0..self.params_per_task {
                let target = if self.skew > 0.0 && rng.gen_f64() < self.skew {
                    0
                } else {
                    let t = rr % self.shards;
                    rr += 1;
                    t
                };
                params.push(Param::output(addr_on_shard(target), 16));
            }
            tasks.push(TaskRecord {
                id,
                fptr: 0x54A2,
                params,
                exec: SimTime::from_ns(self.exec_ns),
                read: MemCost::None,
                write: MemCost::None,
            });
        }
        Trace::from_tasks(
            format!(
                "sharded-stress-{}x{}s{}k{:.0}h{:.0}",
                self.n_tasks,
                self.params_per_task,
                self.shards,
                self.skew * 100.0,
                self.hot_ratio * 100.0
            ),
            tasks,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexuspp_core::oracle::OracleResolver;

    #[test]
    fn balanced_stream_spreads_over_shards() {
        let spec = ShardedStressSpec::balanced(512, 4);
        let trace = spec.generate();
        assert_eq!(trace.len(), 512);
        let mut counts = [0u64; 4];
        for t in &trace.tasks {
            for p in &t.params {
                counts[shard_of_addr(p.addr, 4)] += 1;
            }
        }
        let total: u64 = counts.iter().sum();
        assert_eq!(total, 512 * 2);
        for (s, c) in counts.iter().enumerate() {
            assert!(
                *c * 4 >= total * 8 / 10 && *c * 4 <= total * 12 / 10,
                "shard {s} holds {c}/{total} parameters — not balanced"
            );
        }
    }

    #[test]
    fn full_skew_hits_one_shard_only() {
        let trace = ShardedStressSpec::hot_shard(256, 8).generate();
        for t in &trace.tasks {
            for p in &t.params {
                assert_eq!(shard_of_addr(p.addr, 8), 0);
            }
        }
    }

    #[test]
    fn balanced_stream_is_fully_independent() {
        let trace = ShardedStressSpec::balanced(200, 4).generate();
        let mut oracle = OracleResolver::new();
        for t in &trace.tasks {
            let (_, ready) = oracle.submit(&t.params);
            assert!(ready, "balanced stream must have no dependencies");
        }
    }

    #[test]
    fn hot_key_creates_fanout_and_write_epochs() {
        let spec = ShardedStressSpec {
            hot_period: 8,
            ..ShardedStressSpec::hot_key(400, 4, 0.5)
        };
        let trace = spec.generate();
        // Identify the hot address as the only repeated one.
        let mut freq = std::collections::HashMap::new();
        for t in &trace.tasks {
            for p in &t.params {
                *freq.entry(p.addr).or_insert(0u32) += 1;
            }
        }
        let (&hot_addr, _) = freq.iter().max_by_key(|(_, c)| **c).unwrap();
        assert_eq!(shard_of_addr(hot_addr, 4), 0, "hot key is homed on shard 0");
        let mut readers = 0u32;
        let mut writers = 0u32;
        let mut parked = 0u32;
        let mut oracle = OracleResolver::new();
        for t in &trace.tasks {
            for p in &t.params {
                if p.addr == hot_addr {
                    if p.mode.is_read_only() {
                        readers += 1;
                    } else {
                        writers += 1;
                    }
                }
            }
            let (_, ready) = oracle.submit(&t.params);
            if !ready {
                parked += 1;
            }
        }
        assert!(readers > 50, "hot key must be widely read ({readers})");
        assert!(writers >= 2, "hot key must rotate write epochs ({writers})");
        assert!(
            parked > 0,
            "write epochs must create real dependencies ({parked})"
        );
        // All parked tasks must drain once everything finishes.
        let mut ready = oracle.ready_set();
        while let Some(id) = ready.pop() {
            ready.extend(oracle.finish(id));
        }
        assert!(oracle.all_done());
    }

    #[test]
    fn streams_are_reproducible() {
        let a = ShardedStressSpec::hot_key(64, 4, 0.3).generate();
        let b = ShardedStressSpec::hot_key(64, 4, 0.3).generate();
        assert_eq!(a.tasks, b.tasks);
    }
}
