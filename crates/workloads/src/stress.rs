//! Synthetic stressors for mechanisms the paper's benchmarks do not reach.
//!
//! * [`wide_params`] — tasks with arbitrarily long parameter lists,
//!   validating the **dummy task** chain in the Task Pool (the paper's own
//!   benchmarks have ≤ 3 parameters per task under our workload models;
//!   the mechanism is motivated by §II-C but only synthetic tasks hit it),
//! * [`fan_out`] — one producer feeding `k` consumers, the minimal
//!   Kick-Off-List overflow case,
//! * [`war_chain`] — alternating reader groups and writers on one address,
//!   exercising the `ww` ("a writer waits") flag and the drain-readers-
//!   until-writer wake-up that the paper describes as a WAR/WAW safeguard.

use nexuspp_desim::SimTime;
use nexuspp_trace::{MemCost, Param, TaskRecord, Trace};

fn task(id: u64, params: Vec<Param>, exec_ns: u64) -> TaskRecord {
    TaskRecord {
        id,
        fptr: 0x57E5,
        params,
        exec: SimTime::from_ns(exec_ns),
        read: MemCost::None,
        write: MemCost::None,
    }
}

/// `n_tasks` tasks, each with `n_params` parameters. Consecutive tasks are
/// chained: task `t` reads the first output of task `t−1`, so the trace
/// also checks that dependencies land on the correct parameter even deep
/// inside a dummy-task chain.
pub fn wide_params(n_tasks: u32, n_params: u32, exec_ns: u64) -> Trace {
    assert!(n_params >= 1);
    let stride = 64u64;
    let block = |t: u64, k: u64| 0x8000_0000 + (t * n_params as u64 + k) * stride;
    let mut tasks = Vec::with_capacity(n_tasks as usize);
    for t in 0..n_tasks as u64 {
        let mut params = Vec::with_capacity(n_params as usize);
        if t > 0 {
            // Depend on the previous task's first output.
            params.push(Param::input(block(t - 1, 0), 16));
        }
        let own = if t > 0 { n_params - 1 } else { n_params };
        for k in 0..own as u64 {
            params.push(Param::output(block(t, k), 16));
        }
        tasks.push(task(t, params, exec_ns));
    }
    Trace::from_tasks(format!("wide-params-{n_tasks}x{n_params}"), tasks)
}

/// One producer writing a block, then `k` consumers each reading it: the
/// producer's Kick-Off List must hold `k` waiters (dummy entries beyond
/// the hardware list size).
pub fn fan_out(k: u32, exec_ns: u64) -> Trace {
    let addr = 0x9000_0000;
    let mut tasks = vec![task(0, vec![Param::output(addr, 64)], exec_ns)];
    for c in 1..=k as u64 {
        tasks.push(task(
            c,
            vec![Param::input(addr, 64), Param::output(addr + c * 0x100, 64)],
            exec_ns,
        ));
    }
    Trace::from_tasks(format!("fan-out-{k}"), tasks)
}

/// `rounds` repetitions of: `readers` read-only tasks on a shared address
/// followed by one writer of it. Every round after the first exercises the
/// RAW wake-up; every writer exercises the WAR (`ww`) path against the
/// round's readers.
pub fn war_chain(rounds: u32, readers: u32, exec_ns: u64) -> Trace {
    let shared = 0xA000_0000u64;
    let mut tasks = Vec::new();
    let mut id = 0u64;
    // Seed the address with an initial writer so readers have a producer.
    tasks.push(task(id, vec![Param::output(shared, 64)], exec_ns));
    id += 1;
    for r in 0..rounds as u64 {
        for c in 0..readers as u64 {
            tasks.push(task(
                id,
                vec![
                    Param::input(shared, 64),
                    Param::output(0xB000_0000 + (r * readers as u64 + c) * 0x40, 16),
                ],
                exec_ns,
            ));
            id += 1;
        }
        tasks.push(task(id, vec![Param::inout(shared, 64)], exec_ns));
        id += 1;
    }
    Trace::from_tasks(format!("war-chain-{rounds}x{readers}"), tasks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexuspp_core::oracle::OracleResolver;
    use nexuspp_core::{DependencyEngine, NexusConfig};

    #[test]
    fn wide_params_shapes() {
        let t = wide_params(4, 20, 100);
        assert_eq!(t.len(), 4);
        assert_eq!(t.tasks[0].params.len(), 20);
        assert_eq!(t.tasks[1].params.len(), 20); // 1 input + 19 outputs
        assert_eq!(t.stats().max_params, 20);
    }

    #[test]
    fn wide_params_chain_through_engine_with_dummies() {
        let trace = wide_params(6, 20, 100);
        let mut e = DependencyEngine::new(&NexusConfig::default());
        let mut tds = Vec::new();
        let mut ready_count = 0;
        for t in &trace.tasks {
            let (td, ready) = e.submit(t.fptr, t.id, t.params.clone()).unwrap();
            tds.push(td);
            ready_count += ready as u32;
        }
        assert_eq!(ready_count, 1, "only the head of the chain is ready");
        // 20 params at 8/TD → 3 descriptors each.
        assert_eq!(e.pool().stats().dummy_tds_allocated, 2 * 6);
        for td in tds {
            e.finish(td);
        }
        assert_eq!(e.pool().in_use(), 0);
        assert_eq!(e.table().occupied(), 0);
    }

    #[test]
    fn fan_out_waiters_overflow_kickoff_list() {
        let trace = fan_out(20, 100);
        let mut e = DependencyEngine::new(&NexusConfig::default());
        let mut tds = Vec::new();
        for t in &trace.tasks {
            let (td, _) = e.submit(t.fptr, t.id, t.params.clone()).unwrap();
            tds.push(td);
        }
        // 20 waiters at list size 8 → at least 2 dummy entries.
        assert!(e.table().stats().ext_allocs >= 2);
        let fin = e.finish(tds[0]);
        assert_eq!(fin.newly_ready.len(), 20, "all consumers wake at once");
    }

    #[test]
    fn war_chain_is_fully_serial_between_rounds() {
        let trace = war_chain(3, 4, 10);
        let mut oracle = OracleResolver::new();
        for t in &trace.tasks {
            oracle.submit(&t.params);
        }
        // Drain: at any point the ready set is either one writer or one
        // round of readers.
        let mut steps = Vec::new();
        while !oracle.all_done() {
            let ready = oracle.ready_set();
            steps.push(ready.len());
            for id in ready {
                oracle.finish(id);
            }
        }
        assert_eq!(steps, vec![1, 4, 1, 4, 1, 4, 1]);
    }
}
