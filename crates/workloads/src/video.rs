//! Multi-frame H.264 decoding — the natural extension of the paper's
//! single-frame trace.
//!
//! The paper's benchmark decodes "one full HD frame" (120×68 macroblocks)
//! and is therefore dominated by the wavefront's ramp effect: available
//! parallelism climbs from 1 and collapses back to 1 at the frame
//! boundary. A real decoder pipelines *frames*: macroblock (f, i, j) of a
//! P-frame additionally references the co-located (plus motion-range)
//! blocks of frame f−1, which lets the next frame's wavefront start long
//! before the current one retires — the overlapping-wavefront execution
//! the H.264-on-Cell literature (the paper's refs \[2\], \[15\]) analyzes.
//!
//! [`VideoSpec`] generates an `F`-frame trace with intra-frame wavefront
//! dependencies and optional inter-frame reference dependencies, letting
//! the evaluation show how much of the single-frame ramp limit the
//! pipeline recovers.

use crate::grid::GridSpec;
use crate::timing::H264Timing;
use nexuspp_core::TaskBuilder;
use nexuspp_desim::Rng;
use nexuspp_trace::{MemCost, Trace};

/// Multi-frame decode benchmark parameters.
#[derive(Debug, Clone)]
pub struct VideoSpec {
    /// Number of frames to decode.
    pub frames: u32,
    /// Per-frame geometry and timing (dimensions, block size, seed).
    pub grid: GridSpec,
    /// Whether P-frames reference the previous frame (motion
    /// compensation). Without it frames are independent wavefronts.
    pub inter_frame: bool,
}

impl VideoSpec {
    /// `frames` full-HD frames with the paper's geometry and timing.
    pub fn new(frames: u32) -> Self {
        VideoSpec {
            frames,
            grid: GridSpec::default(),
            inter_frame: true,
        }
    }

    /// A smaller geometry for tests, deterministic timing.
    pub fn small(frames: u32, rows: u32, cols: u32) -> Self {
        VideoSpec {
            frames,
            grid: GridSpec::small(rows, cols),
            inter_frame: true,
        }
    }

    /// Total task count: `frames × rows × cols`.
    pub fn task_count(&self) -> u64 {
        self.frames as u64 * self.grid.task_count()
    }

    /// Address of macroblock `(frame, i, j)` — each frame gets its own
    /// buffer region.
    pub fn block_addr(&self, frame: u32, i: u32, j: u32) -> u64 {
        debug_assert!(frame < self.frames);
        let frame_bytes = self.grid.task_count() * self.grid.block_bytes as u64;
        self.grid.base_addr
            + frame as u64 * frame_bytes
            + (i as u64 * self.grid.cols as u64 + j as u64) * self.grid.block_bytes as u64
    }

    /// Generate the trace in decode order: frames in sequence, macroblocks
    /// row-major within each frame.
    pub fn generate(&self) -> Trace {
        let mut rng = Rng::new(self.grid.seed ^ 0xF4A3);
        let b = self.grid.block_bytes;
        let mut tasks = Vec::with_capacity(self.task_count() as usize);
        let mut id = 0u64;
        for f in 0..self.frames {
            for i in 0..self.grid.rows {
                for j in 0..self.grid.cols {
                    let mut t = TaskBuilder::new(0xDEC1).tag(id);
                    if j > 0 {
                        t = t.reads(self.block_addr(f, i, j - 1), b);
                    }
                    if i > 0 && j + 1 < self.grid.cols {
                        t = t.reads(self.block_addr(f, i - 1, j + 1), b);
                    }
                    if self.inter_frame && f > 0 {
                        // Motion-compensation reference: co-located block
                        // of the previous frame.
                        t = t.reads(self.block_addr(f - 1, i, j), b);
                    }
                    t = t.read_writes(self.block_addr(f, i, j), b);
                    let (exec, read, write) = self.grid.timing.sample(&mut rng);
                    tasks.push(t.record(exec, MemCost::Time(read), MemCost::Time(write)));
                    id += 1;
                }
            }
        }
        Trace::from_tasks(
            format!(
                "h264-video-{}f{}",
                self.frames,
                if self.inter_frame { "-p" } else { "-i" }
            ),
            tasks,
        )
    }

    /// Timing model accessor (for overrides in tests).
    pub fn timing_mut(&mut self) -> &mut H264Timing {
        &mut self.grid.timing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::parallelism_profile;
    use nexuspp_core::oracle::OracleResolver;

    #[test]
    fn task_count_and_order() {
        let v = VideoSpec::small(3, 6, 5);
        let t = v.generate();
        assert_eq!(t.len(), 90);
        assert_eq!(v.task_count(), 90);
        // Frame 1's first block depends on frame 0's first block.
        let t30 = &t.tasks[30];
        assert_eq!(t30.params.len(), 2); // reference + self (corner block)
    }

    #[test]
    fn frames_do_not_alias() {
        let v = VideoSpec::small(2, 4, 4);
        assert_ne!(v.block_addr(0, 3, 3), v.block_addr(1, 0, 0));
        assert_eq!(
            v.block_addr(1, 0, 0) - v.block_addr(0, 0, 0),
            (16 * v.grid.block_bytes) as u64
        );
    }

    #[test]
    fn pipelining_raises_average_parallelism() {
        // One frame: ramp-limited. Four frames with inter-frame refs:
        // wavefronts overlap, average parallelism rises.
        let single = parallelism_profile(&VideoSpec::small(1, 16, 12).generate());
        let multi = parallelism_profile(&VideoSpec::small(4, 16, 12).generate());
        assert!(
            multi.avg_parallelism() > single.avg_parallelism() * 1.5,
            "pipelined frames must overlap: {} vs {}",
            multi.avg_parallelism(),
            single.avg_parallelism()
        );
        // Critical path grows by ~1 wavefront step per extra frame (the
        // co-located dependency), not by a whole frame.
        assert!(multi.critical_path() < single.critical_path() * 2);
    }

    #[test]
    fn independent_frames_without_inter_frame_deps() {
        let mut v = VideoSpec::small(3, 8, 6);
        v.inter_frame = false;
        let t = v.generate();
        let mut oracle = OracleResolver::new();
        let mut ready = 0;
        for task in &t.tasks {
            let (_, r) = oracle.submit(&task.params);
            ready += r as usize;
        }
        // One independent wavefront head per frame.
        assert_eq!(ready, 3);
    }

    #[test]
    fn deterministic() {
        let a = VideoSpec::new(2).generate();
        let b = VideoSpec::new(2).generate();
        assert_eq!(a, b);
    }
}
