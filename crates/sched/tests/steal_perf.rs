//! The PR's acceptance bar, asserted: on the imbalanced steal-stress
//! workload at 4 workers, the work-stealing scheduler beats the mutex
//! ready-queue baseline by ≥ 1.5× wall-clock.
//!
//! The workload is almost pure scheduling (task bodies are a few atomic
//! increments), so the comparison isolates the layer this PR replaces:
//! per task, the baseline pays one queue-lock round to enqueue, a wake
//! token through a Mutex+Condvar channel (send + recv), and another
//! queue-lock round to dequeue; work stealing pays a handful of atomic
//! operations on the owner's deque. That advantage does not depend on
//! core count — it holds even on a single-CPU host, where the deciding
//! factor is serialized lock round-trips and futex wake-ups per task
//! rather than parallel speedup — so the bar is robust on small CI
//! machines. Both sides take the best of three runs to shed scheduler
//! warm-up and OS noise.

use nexuspp_sched::stress::{best_of, ChainStressSpec};
use nexuspp_sched::SchedulerKind;

#[test]
fn work_stealing_beats_mutex_queue_by_1_5x_at_4_workers() {
    let spec = ChainStressSpec {
        workers: 4,
        chains: 8,
        chain_len: 4000,
        spin_ns: 0,
    };
    let mutex = best_of(SchedulerKind::MutexQueue, &spec, 3);
    let ws = best_of(SchedulerKind::WorkStealing, &spec, 3);
    let ratio = mutex.elapsed.as_secs_f64() / ws.elapsed.as_secs_f64();
    println!(
        "steal_stress @4 workers, {} tasks: mutex-queue {:?}, work-stealing {:?} \
         ({ratio:.2}x, {} steals)",
        spec.task_count(),
        mutex.elapsed,
        ws.elapsed,
        ws.counts.steals
    );
    assert!(
        ratio >= 1.5,
        "work stealing must beat the mutex ready queue by >= 1.5x on the \
         imbalanced steal-stress workload (got {ratio:.2}x: mutex {:?} vs ws {:?})",
        mutex.elapsed,
        ws.elapsed
    );
}
