//! Execution-correctness tests for both scheduler kinds: every submitted
//! task is dispatched exactly once (none lost, none duplicated), across
//! thread counts, with stealing observable under imbalance and clean
//! shutdown from parked states.

use nexuspp_sched::stress::{run_chain_stress, ChainStressSpec};
use nexuspp_sched::{Priority, Scheduler, SchedulerKind};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

const KINDS: [SchedulerKind; 2] = [SchedulerKind::MutexQueue, SchedulerKind::WorkStealing];

/// Fan-out tree executed through the scheduler: ids `0..fanout_until`
/// each wake two children (`2i+1`, `2i+2`). Checks exactly-once
/// dispatch for externally submitted and worker-woken tasks alike.
fn run_tree(kind: SchedulerKind, workers: usize, fanout_until: u64) -> Vec<u32> {
    let total = 2 * fanout_until + 1;
    let (sched, handles) = Scheduler::<u64>::new(kind, workers);
    let sched = Arc::new(sched);
    let seen: Arc<Vec<AtomicU32>> = Arc::new((0..total).map(|_| AtomicU32::new(0)).collect());
    let done = Arc::new(AtomicU64::new(0));
    let threads: Vec<_> = handles
        .into_iter()
        .map(|h| {
            let sched = Arc::clone(&sched);
            let seen = Arc::clone(&seen);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                while let Some(id) = sched.next(&h) {
                    if id < fanout_until {
                        sched.wake_batch(
                            &h,
                            vec![
                                (2 * id + 1, Priority::Normal),
                                (2 * id + 2, Priority::Normal),
                            ],
                        );
                    }
                    seen[id as usize].fetch_add(1, Ordering::Relaxed);
                    done.fetch_add(1, Ordering::SeqCst);
                }
            })
        })
        .collect();
    sched.submit(0, Priority::Normal);
    while done.load(Ordering::SeqCst) < total {
        std::thread::yield_now();
    }
    sched.shutdown();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(sched.counts().dispatched(), total);
    seen.iter().map(|c| c.load(Ordering::Relaxed)).collect()
}

#[test]
fn both_kinds_dispatch_every_task_exactly_once_across_thread_counts() {
    for kind in KINDS {
        for workers in [1usize, 2, 4, 8] {
            let seen = run_tree(kind, workers, 2000);
            let bad: Vec<_> = seen
                .iter()
                .enumerate()
                .filter(|(_, &c)| c != 1)
                .take(5)
                .collect();
            assert!(
                bad.is_empty(),
                "{} @ {workers} workers lost/duplicated tasks: {bad:?}",
                kind.name()
            );
        }
    }
}

#[test]
fn work_stealing_and_mutex_execute_identical_task_sets_on_chains() {
    // The differential form of the same property, over the steal-stress
    // workload: both kinds run the identical DAG to completion with every
    // task executed exactly once — the executed *set* is identical.
    let spec = ChainStressSpec {
        workers: 4,
        chains: 6,
        chain_len: 500,
        spin_ns: 0,
    };
    for kind in KINDS {
        let r = run_chain_stress(kind, &spec);
        assert_eq!(r.executed, spec.task_count(), "{}", kind.name());
        assert!(r.exactly_once, "{} lost or duplicated a task", kind.name());
    }
}

#[test]
fn imbalanced_chains_force_steals() {
    // One worker wakes every chain head; with 4 workers the others can
    // only make progress by stealing. Per-task busy-work stretches the
    // run across many OS quanta so sibling workers provably get CPU time
    // while the producer's deque still holds unstarted chains — without
    // it, a single-CPU host can let the producer drain everything alone.
    let spec = ChainStressSpec {
        workers: 4,
        chains: 8,
        chain_len: 1500,
        spin_ns: 5_000,
    };
    let mut last = None;
    for _attempt in 0..3 {
        let r = run_chain_stress(SchedulerKind::WorkStealing, &spec);
        assert!(r.exactly_once);
        // The wake burst was delivered batched, and chain wakes stayed
        // local to the worker that produced them.
        assert!(r.counts.wake_batches > 0);
        assert!(r.counts.local_pushes > 0);
        if r.counts.steals > 0 {
            return;
        }
        last = Some(r.counts);
    }
    panic!("imbalanced fan-out must be redistributed by stealing: {last:?}");
}

#[test]
fn high_priority_overtakes_queued_normals_in_both_kinds() {
    for kind in KINDS {
        // Single worker, started only after the queue is preloaded, so
        // the pop order is exactly the scheduling policy.
        let (sched, mut handles) = Scheduler::<u64>::new(kind, 1);
        for id in 1..=8u64 {
            sched.submit(id, Priority::Normal);
        }
        sched.submit(99, Priority::High);
        let h = handles.remove(0);
        let first = sched.next(&h).unwrap();
        assert_eq!(
            first,
            99,
            "{}: the high-priority task must be dispatched first",
            kind.name()
        );
        // Drain the rest, then shut down.
        for _ in 0..8 {
            assert!(sched.next(&h).unwrap() < 99);
        }
        sched.shutdown();
        assert!(sched.next(&h).is_none());
    }
}

#[test]
fn idle_workers_park_and_shut_down_cleanly() {
    let (sched, handles) = Scheduler::<u64>::new(SchedulerKind::WorkStealing, 4);
    let sched = Arc::new(sched);
    let done = Arc::new(AtomicU64::new(0));
    let threads: Vec<_> = handles
        .into_iter()
        .map(|h| {
            let sched = Arc::clone(&sched);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                while let Some(_id) = sched.next(&h) {
                    done.fetch_add(1, Ordering::SeqCst);
                }
            })
        })
        .collect();
    // Let the idle workers park, then prove a submission still wakes one
    // (no lost wake-up from the parked state).
    std::thread::sleep(std::time::Duration::from_millis(30));
    sched.submit(1, Priority::Normal);
    let t0 = std::time::Instant::now();
    while done.load(Ordering::SeqCst) < 1 {
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(5),
            "parked workers never woke for new work"
        );
        std::thread::yield_now();
    }
    // And shutdown must reach workers that are parked again.
    std::thread::sleep(std::time::Duration::from_millis(10));
    sched.shutdown();
    for t in threads {
        t.join().unwrap();
    }
    let counts = sched.counts();
    assert!(
        counts.parks > 0,
        "idle workers should have parked: {counts:?}"
    );
    assert!(
        counts.unparks > 0,
        "the submission should have unparked a sleeper"
    );
}

#[test]
fn submissions_from_many_external_threads_all_dispatch() {
    for kind in KINDS {
        let (sched, handles) = Scheduler::<u64>::new(kind, 4);
        let sched = Arc::new(sched);
        let done = Arc::new(AtomicU64::new(0));
        let workers: Vec<_> = handles
            .into_iter()
            .map(|h| {
                let sched = Arc::clone(&sched);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    while sched.next(&h).is_some() {
                        done.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        const SUBMITTERS: u64 = 4;
        const PER: u64 = 500;
        let subs: Vec<_> = (0..SUBMITTERS)
            .map(|s| {
                let sched = Arc::clone(&sched);
                std::thread::spawn(move || {
                    for i in 0..PER {
                        let prio = if i % 16 == 0 {
                            Priority::High
                        } else {
                            Priority::Normal
                        };
                        sched.submit(s * PER + i, prio);
                    }
                })
            })
            .collect();
        for s in subs {
            s.join().unwrap();
        }
        while done.load(Ordering::SeqCst) < SUBMITTERS * PER {
            std::thread::yield_now();
        }
        sched.shutdown();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(
            sched.counts().dispatched(),
            SUBMITTERS * PER,
            "{}",
            kind.name()
        );
    }
}

/// External (handle-less) draining: a thread with no WorkerHandle pops
/// everything a 0-worker scheduler holds, including wakes it delivers
/// itself — the shape a scheduler-aware waiter relies on.
#[test]
fn external_pop_drains_a_zero_worker_scheduler() {
    for kind in KINDS {
        let (sched, handles) = Scheduler::<u64>::new(kind, 0);
        assert!(handles.is_empty());
        for v in 0..8u64 {
            sched.submit(v, Priority::Normal);
        }
        sched.submit(100, Priority::High);
        let mut got = Vec::new();
        while let Some(v) = sched.try_next_external() {
            got.push(v);
            if v == 3 {
                // Wakes delivered externally surface through the same pop.
                sched.wake_batch_external(vec![(200, Priority::Normal)]);
            }
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5, 6, 7, 100, 200], "{kind:?}");
        assert_eq!(sched.counts().dispatched(), 10, "{kind:?}");
        sched.shutdown();
    }
}

/// A worker blocked in next() must tolerate an external helper popping
/// the item its wake token promised (the token becomes spurious) and
/// still dispatch later work.
#[test]
fn workers_absorb_tokens_orphaned_by_external_pops() {
    for kind in KINDS {
        let (sched, mut handles) = Scheduler::<u64>::new(kind, 1);
        let sched = Arc::new(sched);
        let h = handles.pop().unwrap();
        let seen = Arc::new(AtomicU64::new(0));
        let worker = {
            let sched = Arc::clone(&sched);
            let seen = Arc::clone(&seen);
            std::thread::spawn(move || {
                while let Some(v) = sched.next(&h) {
                    seen.fetch_add(v, Ordering::SeqCst);
                }
            })
        };
        // Race external pops against the worker; whoever wins, every
        // item must be dispatched exactly once and nothing may hang.
        let mut external_sum = 0u64;
        for round in 1..=50u64 {
            sched.submit(round, Priority::Normal);
            if let Some(v) = sched.try_next_external() {
                external_sum += v;
            }
        }
        let expect: u64 = (1..=50).sum();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while seen.load(Ordering::SeqCst) + external_sum < expect {
            assert!(
                std::time::Instant::now() < deadline,
                "lost items ({kind:?})"
            );
            std::thread::yield_now();
        }
        assert_eq!(
            seen.load(Ordering::SeqCst) + external_sum,
            expect,
            "{kind:?}"
        );
        sched.shutdown();
        worker.join().unwrap();
    }
}
