//! The baseline scheduler: one global two-level ready queue behind a
//! mutex, with wake tokens delivered over an MPMC channel.
//!
//! This is, deliberately, the scheme both runtimes used before the
//! work-stealing scheduler existed (PR 2 and earlier): every ready task
//! takes the global queue lock to enqueue, a wake token travels through a
//! Mutex+Condvar channel, and the receiving worker takes the queue lock
//! again to dequeue — four serialized lock acquisitions per task, which
//! is exactly the serialization point the work-stealing scheduler
//! removes. It stays selectable through
//! [`SchedulerKind::MutexQueue`](crate::SchedulerKind) so differential
//! tests and the `repro -- steal` experiment can compare both under
//! identical workloads.
//!
//! The only change from the seed runtimes is batched wake delivery: a
//! finish report's wakes enter the queue under **one** lock acquisition
//! and ride **one** `Wake(n)` token (receivers re-emit `Wake(n-1)`), so
//! the finisher's critical path no longer pays one send per woken task.

use crate::metrics::SchedMetrics;
use crossbeam::channel::{unbounded, Receiver, Sender};
use nexuspp_core::Priority;
use parking_lot::Mutex;
use std::collections::VecDeque;

/// Wake-token protocol: `Wake(n)` promises `n` queued items.
enum Token {
    Wake(u32),
    Shutdown,
}

struct TwoLevel<T> {
    high: VecDeque<T>,
    normal: VecDeque<T>,
}

impl<T> Default for TwoLevel<T> {
    fn default() -> Self {
        TwoLevel {
            high: VecDeque::new(),
            normal: VecDeque::new(),
        }
    }
}

impl<T> TwoLevel<T> {
    fn push(&mut self, item: T, prio: Priority) {
        if prio.is_high() {
            self.high.push_back(item);
        } else {
            self.normal.push_back(item);
        }
    }

    /// Two-level pop: high-priority tasks overtake queued normals.
    fn pop(&mut self) -> Option<(T, Priority)> {
        if let Some(item) = self.high.pop_front() {
            return Some((item, Priority::High));
        }
        self.normal.pop_front().map(|item| (item, Priority::Normal))
    }
}

pub(crate) struct MutexScheduler<T> {
    ready: Mutex<TwoLevel<T>>,
    tx: Sender<Token>,
    rx: Receiver<Token>,
}

impl<T: Send> MutexScheduler<T> {
    pub(crate) fn new() -> Self {
        let (tx, rx) = unbounded();
        MutexScheduler {
            ready: Mutex::new(TwoLevel::default()),
            tx,
            rx,
        }
    }

    pub(crate) fn push(&self, item: T, prio: Priority) {
        self.ready.lock().push(item, prio);
        self.tx
            .send(Token::Wake(1))
            .expect("worker channel closed while tasks in flight");
    }

    /// Enqueue a whole batch under one lock acquisition and one token.
    pub(crate) fn push_batch(&self, items: Vec<(T, Priority)>) {
        let n = items.len() as u32;
        if n == 0 {
            return;
        }
        {
            let mut q = self.ready.lock();
            for (item, prio) in items {
                q.push(item, prio);
            }
        }
        self.tx
            .send(Token::Wake(n))
            .expect("worker channel closed while tasks in flight");
    }

    pub(crate) fn next(&self, metrics: &SchedMetrics) -> Option<T> {
        loop {
            match self.rx.recv() {
                Ok(Token::Wake(n)) => {
                    if n > 1 {
                        // Pass the remainder of the batch on before working,
                        // so sibling workers start on it immediately.
                        let _ = self.tx.send(Token::Wake(n - 1));
                    }
                    // An external helper (a scheduler-aware waiter) may
                    // have popped the promised item directly, leaving its
                    // token behind; such a token is spurious — keep
                    // waiting rather than asserting.
                    match self.ready.lock().pop() {
                        Some((item, prio)) => {
                            SchedMetrics::bump(if prio.is_high() {
                                &metrics.high_pops
                            } else {
                                &metrics.injector_pops
                            });
                            return Some(item);
                        }
                        None => continue,
                    }
                }
                Ok(Token::Shutdown) | Err(_) => return None,
            }
        }
    }

    /// Non-blocking direct pop for external helpers (threads without a
    /// wake-token receiver loop). The helper's pop orphans one queued
    /// wake token, which [`next`](Self::next) absorbs as spurious.
    pub(crate) fn try_pop(&self, metrics: &SchedMetrics) -> Option<T> {
        let (item, prio) = self.ready.lock().pop()?;
        SchedMetrics::bump(if prio.is_high() {
            &metrics.high_pops
        } else {
            &metrics.injector_pops
        });
        Some(item)
    }

    /// Stop `n_workers` workers: one `Shutdown` token each.
    pub(crate) fn shutdown(&self, n_workers: usize) {
        for _ in 0..n_workers {
            let _ = self.tx.send(Token::Shutdown);
        }
    }
}
