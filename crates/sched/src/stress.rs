//! The steal-stress harness: an imbalanced fan-out workload driven
//! straight through a [`Scheduler`], shared by the acceptance tests, the
//! `ready_scheduling` criterion bench and the `repro -- steal`
//! experiment.
//!
//! Shape (mirroring `nexuspp_workloads::steal_stress`, which generates
//! the same DAG as an address trace): one root task fans out into
//! `chains` dependency chains of `chain_len` strictly serial tasks.
//! Whichever worker executes the root wakes *every* chain head at once —
//! the single-producer burst — so any speedup beyond one worker requires
//! the other workers to take work they did not produce. Under the mutex
//! queue that means hammering the one global lock; under work stealing it
//! means stealing the chain heads once and then running each chain
//! locally.
//!
//! Tasks are `u64` ids; "executing" one costs a few atomic increments, so
//! measured wall-clock is almost pure scheduling overhead — exactly the
//! layer this crate replaces.

use crate::{Priority, SchedCounts, Scheduler, SchedulerKind};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Parameters of the chain-stress run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainStressSpec {
    /// Worker threads.
    pub workers: usize,
    /// Parallel chains fanned out by the root.
    pub chains: u32,
    /// Serial tasks per chain.
    pub chain_len: u32,
    /// Busy-work per task. Zero measures pure scheduling overhead;
    /// non-zero stretches the run across many OS scheduling quanta so
    /// sibling workers provably get CPU time while work remains (the
    /// deterministic way to observe steals on a single-CPU host).
    pub spin_ns: u64,
}

impl ChainStressSpec {
    /// Total tasks including the root.
    pub fn task_count(&self) -> u64 {
        1 + self.chains as u64 * self.chain_len as u64
    }
}

/// Outcome of a chain-stress run.
#[derive(Debug, Clone)]
pub struct ChainStressReport {
    /// Wall-clock from root submission to last task executed.
    pub elapsed: Duration,
    /// Tasks executed.
    pub executed: u64,
    /// True iff every task ran exactly once (no loss, no duplication).
    pub exactly_once: bool,
    /// Scheduler activity counters at quiescence.
    pub counts: SchedCounts,
}

/// Task id encoding: 0 is the root; chain `c` step `i` is
/// `1 + c * chain_len + i`.
fn chain_head(c: u32, chain_len: u32) -> u64 {
    1 + c as u64 * chain_len as u64
}

/// Busy-wait for `ns` nanoseconds (no-op for zero): the synthetic task
/// body used wherever a stress run must span real wall-clock.
pub fn spin_for(ns: u64) {
    if ns == 0 {
        return;
    }
    let t0 = Instant::now();
    while (t0.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

/// Run the workload to completion on `spec.workers` threads and report.
pub fn run_chain_stress(kind: SchedulerKind, spec: &ChainStressSpec) -> ChainStressReport {
    assert!(spec.chains >= 1 && spec.chain_len >= 1);
    let total = spec.task_count();
    let (sched, handles) = Scheduler::<u64>::new(kind, spec.workers);
    let sched = Arc::new(sched);
    let executed = Arc::new(AtomicU64::new(0));
    let per_task: Arc<Vec<AtomicU32>> = Arc::new((0..total).map(|_| AtomicU32::new(0)).collect());
    let (chains, chain_len, spin_ns) = (spec.chains, spec.chain_len, spec.spin_ns);

    let workers: Vec<_> = handles
        .into_iter()
        .map(|h| {
            let sched = Arc::clone(&sched);
            let executed = Arc::clone(&executed);
            let per_task = Arc::clone(&per_task);
            std::thread::spawn(move || {
                while let Some(id) = sched.next(&h) {
                    spin_for(spin_ns);
                    if id == 0 {
                        // The imbalanced burst: one worker wakes every
                        // chain head in a single batched delivery.
                        let heads = (0..chains)
                            .map(|c| (chain_head(c, chain_len), Priority::Normal))
                            .collect();
                        sched.wake_batch(&h, heads);
                    } else {
                        let step = (id - 1) % chain_len as u64;
                        if step + 1 < chain_len as u64 {
                            sched.wake(&h, id + 1, Priority::Normal);
                        }
                    }
                    per_task[id as usize].fetch_add(1, Ordering::Relaxed);
                    executed.fetch_add(1, Ordering::SeqCst);
                }
            })
        })
        .collect();

    let t0 = Instant::now();
    sched.submit(0, Priority::Normal);
    while executed.load(Ordering::SeqCst) < total {
        std::thread::yield_now();
    }
    let elapsed = t0.elapsed();
    sched.shutdown();
    for w in workers {
        w.join().expect("worker thread panicked");
    }

    let exactly_once = per_task.iter().all(|c| c.load(Ordering::Relaxed) == 1);
    ChainStressReport {
        elapsed,
        executed: executed.load(Ordering::SeqCst),
        exactly_once,
        counts: sched.counts(),
    }
}

/// Best (minimum) wall-clock over `runs` repetitions — the robust
/// comparison statistic for the mutex-vs-stealing acceptance bar.
pub fn best_of(kind: SchedulerKind, spec: &ChainStressSpec, runs: u32) -> ChainStressReport {
    let mut best: Option<ChainStressReport> = None;
    for _ in 0..runs {
        let r = run_chain_stress(kind, spec);
        assert!(
            r.exactly_once,
            "{} run lost or duplicated tasks",
            kind.name()
        );
        if best.as_ref().is_none_or(|b| r.elapsed < b.elapsed) {
            best = Some(r);
        }
    }
    best.expect("runs >= 1")
}
