//! # nexuspp-sched — the ready-task scheduling layer
//!
//! After PR 2 sharded dependency *resolution*, both runtimes still
//! funneled every ready task through one `Mutex<ReadyQueue>` plus one
//! wake-token channel — four serialized lock acquisitions per task, the
//! next bottleneck ROADMAP named. This crate is that layer, extracted and
//! replaced: a work-stealing scheduler in the style task-based runtimes
//! converged on once resolution stopped being the bottleneck (Álvarez et
//! al., *Advanced Synchronization Techniques for Task-based Runtime
//! Systems*, arXiv:2105.07902; the Nanos6/CppSs lineage of StarSs).
//!
//! Two implementations sit behind one API, selected by [`SchedulerKind`]:
//!
//! * [`SchedulerKind::WorkStealing`] *(default)* — per-worker Chase–Lev
//!   deques (LIFO owner pop, FIFO steal), a lock-free global injector for
//!   spawns, a global high-priority queue, and parking so idle workers
//!   hold no CPU. A worker that wakes dependent tasks keeps them local;
//!   idle workers steal oldest-first.
//! * [`SchedulerKind::MutexQueue`] — the previous global-mutex ready
//!   queue with channel wake tokens, kept fully functional for
//!   differential testing and as the measured baseline of
//!   `repro -- steal`.
//!
//! Workers interact through a per-thread [`WorkerHandle`]; spawning
//! threads use [`Scheduler::submit`]. Wakes produced by a finish report
//! are delivered with [`Scheduler::wake_batch`] — one queue operation and
//! one wake token for the whole report, regardless of scheduler kind.
//!
//! ```
//! use nexuspp_core::Priority;
//! use nexuspp_sched::{Scheduler, SchedulerKind};
//!
//! let (sched, handles) = Scheduler::<u64>::new(SchedulerKind::WorkStealing, 2);
//! let sched = std::sync::Arc::new(sched);
//! let workers: Vec<_> = handles
//!     .into_iter()
//!     .map(|h| {
//!         let sched = std::sync::Arc::clone(&sched);
//!         std::thread::spawn(move || {
//!             let mut sum = 0u64;
//!             while let Some(v) = sched.next(&h) {
//!                 sum += v;
//!             }
//!             sum
//!         })
//!     })
//!     .collect();
//! for v in 1..=10u64 {
//!     sched.submit(v, Priority::Normal);
//! }
//! // Workers drain the queue; shut down once everything was dispatched.
//! while sched.counts().dispatched() < 10 {
//!     std::thread::yield_now();
//! }
//! sched.shutdown();
//! let total: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
//! assert_eq!(total, 55);
//! ```

#![deny(missing_docs)]

mod metrics;
mod mutex_queue;
pub mod stress;
mod work_steal;

pub use metrics::SchedCounts;
pub use nexuspp_core::Priority;

use crossbeam::deque;
use metrics::SchedMetrics;
use mutex_queue::MutexScheduler;
use work_steal::WorkStealScheduler;

/// Which ready-task scheduler a runtime drives its workers with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// The pre-sched global queue: one mutex, wake tokens over a channel.
    MutexQueue,
    /// Per-worker work-stealing deques with a lock-free injector.
    #[default]
    WorkStealing,
}

impl SchedulerKind {
    /// Short stable name (table rows, bench labels).
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::MutexQueue => "mutex-queue",
            SchedulerKind::WorkStealing => "work-stealing",
        }
    }
}

/// Per-worker-thread scheduler endpoint. Created by [`Scheduler::new`]
/// and moved into the worker thread; identifies the worker and, for the
/// work-stealing kind, owns its deque.
pub struct WorkerHandle<T> {
    pub(crate) id: usize,
    pub(crate) local: Option<deque::Worker<T>>,
}

impl<T> WorkerHandle<T> {
    /// This worker's index in `0..n_workers`.
    pub fn id(&self) -> usize {
        self.id
    }
}

enum Imp<T> {
    Mutex(MutexScheduler<T>),
    Ws(WorkStealScheduler<T>),
}

/// Lifecycle-event hook attached by [`Scheduler::set_recorder`]: the
/// recorder plus a projection from the scheduled item to its task tag,
/// so steal events name the task that moved.
pub(crate) struct SchedObs<T> {
    pub(crate) rec: std::sync::Arc<nexuspp_obs::Recorder>,
    pub(crate) tag_of: fn(&T) -> u64,
}

/// A ready-task scheduler shared by `n` workers (plus any number of
/// submitting threads).
pub struct Scheduler<T> {
    imp: Imp<T>,
    metrics: SchedMetrics,
    n_workers: usize,
    obs: Option<SchedObs<T>>,
}

impl<T: Send> Scheduler<T> {
    /// Build a scheduler and one [`WorkerHandle`] per worker. Handle `i`
    /// belongs to worker `i`; each must be moved into exactly one thread.
    ///
    /// `n_workers == 0` is allowed: no handles are produced and nothing
    /// ever calls [`next`](Self::next) — every queued task must then be
    /// drained through [`try_next_external`](Self::try_next_external)
    /// (the scheduler-aware-waiter configuration).
    pub fn new(kind: SchedulerKind, n_workers: usize) -> (Self, Vec<WorkerHandle<T>>) {
        let (imp, locals) = match kind {
            SchedulerKind::MutexQueue => (Imp::Mutex(MutexScheduler::new()), None),
            SchedulerKind::WorkStealing => {
                let (ws, locals) = WorkStealScheduler::new(n_workers);
                (Imp::Ws(ws), Some(locals))
            }
        };
        let mut locals: Vec<Option<deque::Worker<T>>> = match locals {
            Some(v) => v.into_iter().map(Some).collect(),
            None => (0..n_workers).map(|_| None).collect(),
        };
        let handles = (0..n_workers)
            .map(|id| WorkerHandle {
                id,
                local: locals[id].take(),
            })
            .collect();
        (
            Scheduler {
                imp,
                metrics: SchedMetrics::default(),
                n_workers,
                obs: None,
            },
            handles,
        )
    }

    /// Attach a lifecycle-event recorder. `tag_of` projects a scheduled
    /// item to its task tag so `Stolen` events name the task that moved
    /// between workers. The work-stealing kind additionally emits
    /// `Stalled`/`Resumed` around each idle park (with no task or shard
    /// attached — see [`nexuspp_obs::EventKind::Stalled`]); the mutex
    /// kind blocks in a channel receive and emits no park events.
    pub fn set_recorder(
        &mut self,
        rec: std::sync::Arc<nexuspp_obs::Recorder>,
        tag_of: fn(&T) -> u64,
    ) {
        self.obs = Some(SchedObs { rec, tag_of });
    }

    /// Which implementation this scheduler runs.
    pub fn kind(&self) -> SchedulerKind {
        match self.imp {
            Imp::Mutex(_) => SchedulerKind::MutexQueue,
            Imp::Ws(_) => SchedulerKind::WorkStealing,
        }
    }

    /// Number of workers this scheduler was built for.
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// Hand a ready task to the workers from outside worker context
    /// (task spawns, wait-on probes).
    pub fn submit(&self, item: T, prio: Priority) {
        SchedMetrics::bump(&self.metrics.submitted);
        match &self.imp {
            Imp::Mutex(m) => m.push(item, prio),
            Imp::Ws(ws) => ws.push_external(item, prio, &self.metrics),
        }
    }

    /// Deliver one wake from worker `h` (a task it completed released
    /// `item`). Prefer [`wake_batch`](Self::wake_batch) for whole finish
    /// reports.
    pub fn wake(&self, h: &WorkerHandle<T>, item: T, prio: Priority) {
        match &self.imp {
            Imp::Mutex(m) => m.push(item, prio),
            Imp::Ws(ws) => ws.push_local(h, item, prio, &self.metrics),
        }
    }

    /// Deliver a whole finish report's wakes in one scheduling operation:
    /// one queue lock + one wake token (mutex kind), or a run of local
    /// deque pushes with at most one unpark per item (work-stealing
    /// kind). No channel round-trip per wake either way.
    pub fn wake_batch(&self, h: &WorkerHandle<T>, items: Vec<(T, Priority)>) {
        if items.is_empty() {
            return;
        }
        SchedMetrics::bump(&self.metrics.wake_batches);
        match &self.imp {
            Imp::Mutex(m) => m.push_batch(items),
            Imp::Ws(ws) => {
                for (item, prio) in items {
                    ws.push_local(h, item, prio, &self.metrics);
                }
            }
        }
    }

    /// Blocking pop for worker `h`: the next task to execute, or `None`
    /// once the scheduler shut down and no work remains.
    pub fn next(&self, h: &WorkerHandle<T>) -> Option<T> {
        match &self.imp {
            Imp::Mutex(m) => m.next(&self.metrics),
            Imp::Ws(ws) => ws.next(h, &self.metrics, self.obs.as_ref()),
        }
    }

    /// Non-blocking pop from *outside* any worker thread — the endpoint
    /// for scheduler-aware waiters (a blocked `wait_on` caller executing
    /// ready tasks until its probe completes) and 0-worker runtimes.
    /// Sweeps the shared sources in policy order: the high-priority
    /// queue, the injector (mutex kind: the global queue), then steals
    /// from worker deques. Returns `None` when no ready task is
    /// currently visible — which is not quiescence; a running task may
    /// publish more work.
    pub fn try_next_external(&self) -> Option<T> {
        match &self.imp {
            Imp::Mutex(m) => m.try_pop(&self.metrics),
            Imp::Ws(ws) => ws.try_find_external(&self.metrics, self.obs.as_ref()),
        }
    }

    /// Deliver a finish report's wakes from outside worker context (an
    /// external helper has no [`WorkerHandle`], so the items land on the
    /// shared queues instead of a local deque). One queue lock + one
    /// token under the mutex kind, injector pushes under work stealing.
    pub fn wake_batch_external(&self, items: Vec<(T, Priority)>) {
        if items.is_empty() {
            return;
        }
        SchedMetrics::bump(&self.metrics.wake_batches);
        match &self.imp {
            Imp::Mutex(m) => m.push_batch(items),
            Imp::Ws(ws) => {
                for (item, prio) in items {
                    ws.push_external(item, prio, &self.metrics);
                }
            }
        }
    }

    /// Stop all workers. Callers must have reached quiescence (no tasks
    /// in flight); pending queue contents are not drained.
    pub fn shutdown(&self) {
        match &self.imp {
            Imp::Mutex(m) => m.shutdown(self.n_workers),
            Imp::Ws(ws) => ws.shutdown(),
        }
    }

    /// Snapshot of the activity counters (exact at quiescence).
    pub fn counts(&self) -> SchedCounts {
        self.metrics.snapshot()
    }
}
