//! The work-stealing scheduler: per-worker Chase–Lev deques, lock-free
//! global injectors, and parking for idle workers.
//!
//! Scheduling policy (the classic work-first discipline):
//!
//! 1. the global **high-priority** queue — StarSs `highpriority` tasks
//!    overtake everything, whichever worker they land on,
//! 2. the worker's **own deque**, newest-first (LIFO) — a worker that
//!    wakes a chain of dependent tasks keeps executing that chain with
//!    hot caches and zero shared-state traffic,
//! 3. the global **injector**, oldest-first — externally spawned tasks,
//! 4. **stealing** from sibling deques, oldest-first (FIFO) — idle
//!    workers take the *least* recently produced work, which in fan-out
//!    workloads is the root of the largest remaining subtree.
//!
//! A worker that completes the sweep empty-handed parks on its own
//! condvar. The sleeper handshake is the standard two-phase one: register
//! in the sleeper stack, then re-run the sweep before actually blocking.
//! Producers publish work *before* checking the sleeper count (both with
//! sequentially consistent operations), so either the producer observes
//! the registration and unparks, or the re-check observes the work — a
//! wake can be spurious but never lost.

use crate::metrics::SchedMetrics;
use crate::{SchedObs, WorkerHandle};
use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use nexuspp_core::Priority;
use nexuspp_obs::{EventKind, NO_SHARD, NO_TASK};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// One worker's parking spot.
#[derive(Default)]
struct Parker {
    /// Wake token: set by an unparker (or shutdown), consumed by the
    /// owner. Guarded by the mutex so a wake between "decide to park"
    /// and "wait" is never missed.
    flag: Mutex<bool>,
    cv: Condvar,
}

pub(crate) struct WorkStealScheduler<T> {
    /// Global high-priority queue, checked before any normal source.
    high: Injector<T>,
    /// Global entry point for externally submitted normal tasks.
    injector: Injector<T>,
    /// Steal handles onto every worker's deque, indexed by worker id.
    stealers: Box<[Stealer<T>]>,
    parkers: Box<[Parker]>,
    /// Stack of currently-registered sleepers (worker ids).
    sleepers: Mutex<Vec<usize>>,
    /// Mirror of `sleepers.len()`, readable without the lock.
    n_sleepers: AtomicUsize,
    shutdown: AtomicBool,
}

impl<T: Send> WorkStealScheduler<T> {
    /// Build the shared scheduler plus one deque per worker; the deques
    /// are handed to the caller to move into the worker threads.
    pub(crate) fn new(n_workers: usize) -> (Self, Vec<Worker<T>>) {
        let locals: Vec<Worker<T>> = (0..n_workers).map(|_| Worker::new_lifo()).collect();
        let sched = WorkStealScheduler {
            high: Injector::new(),
            injector: Injector::new(),
            stealers: locals.iter().map(Worker::stealer).collect(),
            parkers: (0..n_workers).map(|_| Parker::default()).collect(),
            sleepers: Mutex::new(Vec::with_capacity(n_workers)),
            n_sleepers: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        };
        (sched, locals)
    }

    /// Push from outside any worker (spawns, wait-on probes).
    pub(crate) fn push_external(&self, item: T, prio: Priority, metrics: &SchedMetrics) {
        if prio.is_high() {
            self.high.push(item);
        } else {
            self.injector.push(item);
        }
        self.maybe_unpark(metrics);
    }

    /// Push a wake from worker `h`: normal wakes stay on the worker's own
    /// deque (work-first), high-priority wakes go global so any worker
    /// picks them up next.
    pub(crate) fn push_local(
        &self,
        h: &WorkerHandle<T>,
        item: T,
        prio: Priority,
        metrics: &SchedMetrics,
    ) {
        if prio.is_high() {
            self.high.push(item);
        } else {
            let local = h.local.as_ref().expect("work-stealing handle has a deque");
            local.push(item);
            SchedMetrics::bump(&metrics.local_pushes);
        }
        self.maybe_unpark(metrics);
    }

    /// Blocking pop. Returns `None` only after shutdown with no work
    /// found in a full sweep.
    pub(crate) fn next(
        &self,
        h: &WorkerHandle<T>,
        metrics: &SchedMetrics,
        obs: Option<&SchedObs<T>>,
    ) -> Option<T> {
        loop {
            // Two sweeps with a yield between them: on a saturated host
            // this gives the producers a chance to publish before we pay
            // for the parking handshake.
            for round in 0..2 {
                if let Some(item) = self.try_find(h, metrics, obs) {
                    return Some(item);
                }
                if round == 0 {
                    std::thread::yield_now();
                }
            }
            if self.shutdown.load(Ordering::SeqCst) {
                return None;
            }
            // Phase 1: register as a sleeper.
            {
                let mut s = self.sleepers.lock();
                s.push(h.id);
                self.n_sleepers.store(s.len(), Ordering::SeqCst);
            }
            // Phase 2: re-check. Work published before our registration
            // is necessarily visible here; work published after it will
            // find us in the sleeper stack and unpark us.
            if let Some(item) = self.try_find(h, metrics, obs) {
                self.cancel_park(h.id);
                return Some(item);
            }
            if self.shutdown.load(Ordering::SeqCst) {
                self.cancel_park(h.id);
                return None;
            }
            SchedMetrics::bump(&metrics.parks);
            if let Some(o) = obs {
                o.rec.emit(EventKind::Stalled, NO_TASK, NO_SHARD);
            }
            {
                let parker = &self.parkers[h.id];
                let mut flag = parker.flag.lock();
                while !*flag {
                    parker.cv.wait(&mut flag);
                }
                *flag = false;
            }
            if let Some(o) = obs {
                o.rec.emit(EventKind::Resumed, NO_TASK, NO_SHARD);
            }
            // A wake token can be stale (an unparker that lost the
            // `cancel_park` race on an earlier cycle), in which case our
            // registration is still in the sleeper stack. Remove it so
            // duplicate entries never accumulate and future unparks are
            // not misdirected at a busy worker; a genuine wake already
            // popped us and this is a no-op.
            self.deregister(h.id);
        }
    }

    /// One full sweep over every source, in policy order.
    fn try_find(
        &self,
        h: &WorkerHandle<T>,
        metrics: &SchedMetrics,
        obs: Option<&SchedObs<T>>,
    ) -> Option<T> {
        if let Steal::Success(item) = self.high.steal() {
            SchedMetrics::bump(&metrics.high_pops);
            return Some(item);
        }
        if let Some(local) = h.local.as_ref() {
            if let Some(item) = local.pop() {
                SchedMetrics::bump(&metrics.local_pops);
                return Some(item);
            }
        }
        if let Steal::Success(item) = self.injector.steal() {
            SchedMetrics::bump(&metrics.injector_pops);
            return Some(item);
        }
        // Steal, starting past our own id so victims spread out. Retry a
        // bounded number of passes on CAS races, then give up (the outer
        // loop re-sweeps before parking).
        let n = self.stealers.len();
        for _pass in 0..2 {
            let mut contended = false;
            for k in 1..n {
                let victim = (h.id + k) % n;
                match self.stealers[victim].steal() {
                    Steal::Success(item) => {
                        SchedMetrics::bump(&metrics.steals);
                        if let Some(o) = obs {
                            o.rec.emit(EventKind::Stolen, (o.tag_of)(&item), NO_SHARD);
                        }
                        return Some(item);
                    }
                    Steal::Retry => contended = true,
                    Steal::Empty => {}
                }
            }
            if !contended {
                break;
            }
        }
        None
    }

    /// One sweep over the *shared* sources only — high-priority queue,
    /// injector, then stealing from every worker deque — for callers
    /// without a [`WorkerHandle`] (scheduler-aware waiters, 0-worker
    /// runtimes). Safe from any thread: stealing is the deques' MPMC
    /// side.
    pub(crate) fn try_find_external(
        &self,
        metrics: &SchedMetrics,
        obs: Option<&SchedObs<T>>,
    ) -> Option<T> {
        if let Steal::Success(item) = self.high.steal() {
            SchedMetrics::bump(&metrics.high_pops);
            return Some(item);
        }
        if let Steal::Success(item) = self.injector.steal() {
            SchedMetrics::bump(&metrics.injector_pops);
            return Some(item);
        }
        let n = self.stealers.len();
        for _pass in 0..2 {
            let mut contended = false;
            for victim in 0..n {
                match self.stealers[victim].steal() {
                    Steal::Success(item) => {
                        SchedMetrics::bump(&metrics.steals);
                        if let Some(o) = obs {
                            o.rec.emit(EventKind::Stolen, (o.tag_of)(&item), NO_SHARD);
                        }
                        return Some(item);
                    }
                    Steal::Retry => contended = true,
                    Steal::Empty => {}
                }
            }
            if !contended {
                break;
            }
        }
        None
    }

    /// Wake one sleeper if any are registered. Cheap when everyone is
    /// busy: a single relaxed-path atomic load.
    fn maybe_unpark(&self, metrics: &SchedMetrics) {
        if self.n_sleepers.load(Ordering::SeqCst) == 0 {
            return;
        }
        let id = {
            let mut s = self.sleepers.lock();
            let id = s.pop();
            self.n_sleepers.store(s.len(), Ordering::SeqCst);
            id
        };
        if let Some(id) = id {
            SchedMetrics::bump(&metrics.unparks);
            self.wake(id);
        }
    }

    /// Remove `id` from the sleeper stack if present. Returns whether it
    /// was registered.
    fn deregister(&self, id: usize) -> bool {
        let mut s = self.sleepers.lock();
        match s.iter().position(|&w| w == id) {
            Some(at) => {
                s.remove(at);
                self.n_sleepers.store(s.len(), Ordering::SeqCst);
                true
            }
            None => false,
        }
    }

    /// Undo a sleeper registration after the re-check found work. If an
    /// unparker already popped us, absorb the pending wake token so the
    /// next park does not wake spuriously. The absorption races the
    /// unparker's flag store — a token it sets *after* this clear
    /// survives as a stale wake, which the parked path resolves by
    /// deregistering on wake-up.
    fn cancel_park(&self, id: usize) {
        if !self.deregister(id) {
            *self.parkers[id].flag.lock() = false;
        }
    }

    fn wake(&self, id: usize) {
        let parker = &self.parkers[id];
        let mut flag = parker.flag.lock();
        *flag = true;
        parker.cv.notify_one();
    }

    /// Stop every worker: raise the flag, then wake all parking spots
    /// (sleepers and not-yet-parked workers alike).
    pub(crate) fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.sleepers.lock().clear();
        self.n_sleepers.store(0, Ordering::SeqCst);
        for id in 0..self.parkers.len() {
            self.wake(id);
        }
    }
}
