//! Scheduler observability: atomic counters updated on the hot paths and
//! a cheap snapshot type for tests, benches and the `repro -- steal`
//! experiment.

use std::sync::atomic::{AtomicU64, Ordering};

/// Internal atomic counters (relaxed updates; exact totals are only
/// meaningful at quiescence, which is when every consumer reads them).
#[derive(Debug, Default)]
pub(crate) struct SchedMetrics {
    pub(crate) submitted: AtomicU64,
    pub(crate) local_pushes: AtomicU64,
    pub(crate) local_pops: AtomicU64,
    pub(crate) injector_pops: AtomicU64,
    pub(crate) high_pops: AtomicU64,
    pub(crate) steals: AtomicU64,
    pub(crate) parks: AtomicU64,
    pub(crate) unparks: AtomicU64,
    pub(crate) wake_batches: AtomicU64,
}

impl SchedMetrics {
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> SchedCounts {
        SchedCounts {
            submitted: self.submitted.load(Ordering::Relaxed),
            local_pushes: self.local_pushes.load(Ordering::Relaxed),
            local_pops: self.local_pops.load(Ordering::Relaxed),
            injector_pops: self.injector_pops.load(Ordering::Relaxed),
            high_pops: self.high_pops.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            parks: self.parks.load(Ordering::Relaxed),
            unparks: self.unparks.load(Ordering::Relaxed),
            wake_batches: self.wake_batches.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time snapshot of scheduler activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedCounts {
    /// Tasks handed to the scheduler from outside a worker (spawns).
    pub submitted: u64,
    /// Wakes pushed onto the waking worker's own deque.
    pub local_pushes: u64,
    /// Pops satisfied from the worker's own deque.
    pub local_pops: u64,
    /// Pops satisfied from the global injector.
    pub injector_pops: u64,
    /// Pops satisfied from the high-priority queue.
    pub high_pops: u64,
    /// Pops satisfied by stealing from another worker's deque.
    pub steals: u64,
    /// Times a worker parked after finding no work.
    pub parks: u64,
    /// Times a producer unparked a sleeping worker.
    pub unparks: u64,
    /// Batched wake deliveries (one per finish report with ≥1 wake).
    pub wake_batches: u64,
}

impl SchedCounts {
    /// Total tasks dispatched to workers (every pop source summed).
    pub fn dispatched(&self) -> u64 {
        self.local_pops + self.injector_pops + self.high_pops + self.steals
    }
}
