//! Resource-versioning frontend: lowering cost and the throughput the
//! renamed encoding buys over the raw (address-reusing) one.
//!
//! Three views over the rename-heavy `version_stress` workload:
//!
//! * `frontend/lower` — pure frontend cost: build the declarative
//!   `Program` and lower it to a `Param` stream, renamed vs raw. This is
//!   the overhead a StarSs master core would pay per task on top of the
//!   hardware submission itself.
//! * `frontend/engine_drain` — drain the lowered stream through the
//!   batch `ShardedEngine` (submit everything, then retire in FIFO
//!   ready order). Same tasks, same true dependencies; the raw encoding
//!   carries the WAW/WAR serialization the renamer deleted, so the
//!   renamed stream exposes strictly more ready work per step.
//! * `frontend/runtime` — end to end on the threaded `ShardedRuntime`
//!   via `spawn_lowered` with trivial task bodies: the wall-clock gap
//!   between the two encodings under a real scheduler.
//!
//! The structural ≥ 2× parallelism bar is asserted deterministically in
//! `nexuspp-workloads` (`version_stress` tests and the measured-width
//! integration test); the numbers printed here are the same contrast
//! under criterion timing, persisted to `BENCH_frontend.json` by the CI
//! summary sink.

use criterion::{criterion_group, criterion_main, Criterion};
use nexuspp_frontend::exec::{run_on_engine, run_on_runtime};
use nexuspp_frontend::Lowering;
use nexuspp_runtime::ShardCapacity;
use nexuspp_workloads::VersionStressSpec;

const LOWERINGS: [Lowering; 2] = [Lowering::Renamed, Lowering::Raw];

fn spec() -> VersionStressSpec {
    VersionStressSpec {
        chains: 16,
        chain_len: 16,
        cells: 8,
        steps: 4,
        exec_ns: 0,
    }
}

fn bench_lowering(c: &mut Criterion) {
    let spec = spec();
    let mut g = c.benchmark_group("frontend/lower");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Elements(spec.task_count()));
    for lowering in LOWERINGS {
        g.bench_function(lowering.name(), |b| {
            b.iter(|| spec.lowered(lowering).tasks.len());
        });
    }
    g.finish();
}

fn bench_engine_drain(c: &mut Criterion) {
    let spec = spec();
    let mut g = c.benchmark_group("frontend/engine_drain");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Elements(spec.task_count()));
    for lowering in LOWERINGS {
        let lp = spec.lowered(lowering);
        // One reporting run outside the timer: the ready-width contrast.
        let order = run_on_engine(&lp, 4);
        println!(
            "engine_drain/{}: {} tasks retired, {} true edges",
            lowering.name(),
            order.len(),
            lp.edges.len()
        );
        g.bench_function(lowering.name(), |b| {
            b.iter(|| run_on_engine(&lp, 4).len());
        });
    }
    g.finish();
}

fn bench_runtime_level(c: &mut Criterion) {
    let spec = spec();
    let mut g = c.benchmark_group("frontend/runtime");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Elements(spec.task_count()));
    for lowering in LOWERINGS {
        let lp = spec.lowered(lowering);
        g.bench_function(lowering.name(), |b| {
            b.iter(|| run_on_runtime(&lp, 4, 2, ShardCapacity::Unbounded).len());
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_lowering,
    bench_engine_drain,
    bench_runtime_level
);
criterion_main!(benches);
