//! Ready-task scheduling throughput: mutex queue vs work stealing on the
//! imbalanced `steal_stress` workload.
//!
//! Two views:
//!
//! * `sched/*` — the scheduler layer alone, via the chain-stress harness
//!   in `nexuspp_sched::stress` (tasks are a few atomic increments):
//!   pure per-task scheduling overhead. This is the layer where the
//!   acceptance bar lives — the ≥ 1.5× 4-worker comparison is asserted
//!   deterministically in `nexuspp-sched`'s `steal_perf` test; the lines
//!   printed here are the same measurement under criterion timing.
//! * `runtime/*` — end to end through both execution backends (engine
//!   resolution, region bookkeeping, panic fences included), so the
//!   scheduler's share of total runtime overhead is visible.
//!
//! Steal/park counters are printed per configuration so regressions in
//! redistribution (e.g. stealing stops happening) show up even where
//! wall-clock noise hides them.

use criterion::{criterion_group, criterion_main, Criterion};
use nexuspp_bench::steal_driver::{run_steal, Backend};
use nexuspp_runtime::SchedulerKind;
use nexuspp_sched::stress::{run_chain_stress, ChainStressSpec};
use nexuspp_workloads::StealStressSpec;

const KINDS: [SchedulerKind; 2] = [SchedulerKind::MutexQueue, SchedulerKind::WorkStealing];

fn bench_sched_layer(c: &mut Criterion) {
    let spec = ChainStressSpec {
        workers: 4,
        chains: 8,
        chain_len: 2000,
        spin_ns: 0,
    };
    let mut g = c.benchmark_group("ready_scheduling/sched");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Elements(spec.task_count()));
    for kind in KINDS {
        // One reporting run outside the timer for the counters.
        let r = run_chain_stress(kind, &spec);
        println!(
            "sched/{}: {} tasks, {} steals, {} parks, {} unparks",
            kind.name(),
            r.executed,
            r.counts.steals,
            r.counts.parks,
            r.counts.unparks
        );
        g.bench_function(kind.name(), |b| {
            b.iter(|| run_chain_stress(kind, &spec));
        });
    }
    g.finish();
}

fn bench_runtime_level(c: &mut Criterion) {
    let spec = StealStressSpec::for_workers(4, 800);
    let mut g = c.benchmark_group("ready_scheduling/runtime");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Elements(spec.task_count()));
    for backend in [Backend::Single, Backend::Sharded(4)] {
        for kind in KINDS {
            let r = run_steal(backend, kind, 4, &spec);
            println!(
                "runtime/{}/{}: {} tasks, {} steals",
                backend.name(),
                kind.name(),
                r.tasks,
                r.counts.steals
            );
            g.bench_function(&format!("{}_{}", backend.name(), kind.name()), |b| {
                b.iter(|| run_steal(backend, kind, 4, &spec));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_sched_layer, bench_runtime_level);
criterion_main!(benches);
