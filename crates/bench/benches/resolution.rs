//! End-to-end dependency-resolution throughput: the full engine
//! (admit + check + finish) against the reference oracle resolver, over
//! the paper's wavefront workload. This is the software-side measurement
//! behind the §III-B "fewer and simpler tables" efficiency claim.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use nexuspp_core::oracle::OracleResolver;
use nexuspp_core::{DependencyEngine, NexusConfig};
use nexuspp_workloads::{GridPattern, GridSpec};

fn bench_resolution(c: &mut Criterion) {
    let trace = GridSpec::small(40, 30).generate(GridPattern::Wavefront);
    let mut g = c.benchmark_group("resolution");
    g.sample_size(25);
    g.throughput(criterion::Throughput::Elements(trace.len() as u64));

    g.bench_function("engine_wavefront_1200", |b| {
        b.iter_batched(
            || DependencyEngine::new(&NexusConfig::default()),
            |mut e| {
                let mut ready = Vec::new();
                for t in &trace.tasks {
                    // Keep the in-flight window inside the 1K pool
                    // (steady-state behaviour of the real machine).
                    while e.in_flight() >= 512 {
                        let td = ready
                            .pop()
                            .expect("wavefront window always has ready tasks");
                        ready.extend(e.finish(td).newly_ready);
                    }
                    let (td, r) = e.submit(t.fptr, t.id, t.params.clone()).unwrap();
                    if r {
                        ready.push(td);
                    }
                }
                while let Some(td) = ready.pop() {
                    ready.extend(e.finish(td).newly_ready);
                }
                e
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("oracle_wavefront_1200", |b| {
        b.iter_batched(
            OracleResolver::new,
            |mut o| {
                let mut ready = Vec::new();
                for t in &trace.tasks {
                    while o.submitted() - o.finished() >= 512 {
                        let id = ready
                            .pop()
                            .expect("wavefront window always has ready tasks");
                        ready.extend(o.finish(id));
                    }
                    let (id, r) = o.submit(&t.params);
                    if r {
                        ready.push(id);
                    }
                }
                while let Some(id) = ready.pop() {
                    ready.extend(o.finish(id));
                }
                o
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_resolution);
criterion_main!(benches);
