//! Threaded-runtime overhead: spawn/resolve/execute cost per task for
//! trivial closures (the software floor the hardware accelerator is
//! designed to beat).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nexuspp_runtime::Runtime;

fn bench_runtime(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime_overhead");
    g.sample_size(15);
    const N: u64 = 2000;
    g.throughput(Throughput::Elements(N));

    g.bench_function("independent_empty_tasks", |b| {
        let rt = Runtime::new(4);
        b.iter(|| {
            for _ in 0..N {
                rt.task().spawn(|_| {});
            }
            rt.barrier();
        });
    });

    g.bench_function("chained_inout_tasks", |b| {
        let rt = Runtime::new(4);
        let r = rt.region(vec![0u64]);
        b.iter(|| {
            for _ in 0..N {
                let r2 = r.clone();
                rt.task().inout(&r).spawn(move |t| {
                    t.write(&r2)[0] += 1;
                });
            }
            rt.barrier();
        });
    });
    g.finish();
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
