//! Incremental re-execution: what a memoized re-run costs relative to
//! from-scratch on the 1000-task halo-exchange stencil
//! (`IncrStencilSpec::thousand`, 100 cells × 10 steps).
//!
//! Three points on the edit-size curve, all through the same
//! `IncrementalProgram::rerun` path on the batch engine backend:
//!
//! * `from_scratch` — `invalidate_all` then re-run: the degenerate
//!   empty-store case, the baseline every other row is compared to.
//! * `edit1` — one initial-contents edit: the dirty cone is one cell's
//!   light-cone (~`steps²` of `cells × steps` tasks), so most of the
//!   program is spliced from the memo store.
//! * `edit10` — ten spread-out edits: overlapping cones cover most of
//!   the stencil, the regime where incrementality approaches (but never
//!   exceeds) from-scratch cost.
//!
//! The ≥ 2× one-edit win is asserted in release CI by
//! `crates/workloads/tests/incr_speedup.rs`; the numbers here are the
//! same contrast under criterion timing, persisted to
//! `BENCH_incremental.json` by the CI summary sink.

use criterion::{criterion_group, criterion_main, Criterion};
use nexuspp_frontend::Lowering;
use nexuspp_incr::Backend;
use nexuspp_workloads::IncrStencilSpec;

const BACKEND: Backend = Backend::Engine { shards: 4 };

fn bench_rerun(c: &mut Criterion) {
    let spec = IncrStencilSpec::thousand();
    let mut g = c.benchmark_group("incremental/rerun");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Elements(spec.task_count()));

    let mut ip = spec.build();
    g.bench_function("from_scratch", |b| {
        b.iter(|| {
            ip.invalidate_all();
            ip.rerun(Lowering::Renamed, &BACKEND).reran
        });
    });

    // Each timed iteration applies a fresh-seed edit batch so the cone
    // genuinely re-executes (repeating a seed would hit early cutoff
    // and time an empty run). The edit itself is inside the timer on
    // purpose: an editor pays for commit + re-run, not re-run alone.
    for edits in [1u32, 10] {
        let mut round = 0u64;
        let mut ip = spec.build();
        ip.rerun(Lowering::Renamed, &BACKEND);
        g.bench_function(&format!("edit{edits}"), |b| {
            b.iter(|| {
                round += 1;
                ip.edit_batch(spec.touch_edits(edits, round)).unwrap();
                ip.rerun(Lowering::Renamed, &BACKEND).reran
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_rerun);
criterion_main!(benches);
