//! Criterion microbenchmarks of the Dependence Table: the structure whose
//! access counts set the Task Maestro's per-task latency.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use nexuspp_core::table::DepTable;
use nexuspp_core::{NexusConfig, TdIndex};
use nexuspp_trace::AccessMode;

fn cfg(entries: usize, kick: usize) -> NexusConfig {
    NexusConfig {
        dep_table_entries: entries,
        kickoff_entries: kick,
        ..Default::default()
    }
}

fn bench_dep_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("dep_table");
    g.sample_size(30);
    // Insert + delete cycles at Table IV size, low occupancy.
    g.bench_function("insert_delete_4k", |b| {
        b.iter_batched(
            || DepTable::new(&cfg(4096, 8)),
            |mut t| {
                for a in 0..256u64 {
                    t.check_param(TdIndex(a as u32), 0x1000 + a * 64, 8, AccessMode::Out)
                        .unwrap();
                }
                for a in 0..256u64 {
                    t.finish_param(0x1000 + a * 64, AccessMode::Out);
                }
                t
            },
            BatchSize::SmallInput,
        )
    });
    // Same work through a crowded table (longer chains — the Fig 6 effect).
    g.bench_function("insert_delete_crowded_512", |b| {
        b.iter_batched(
            || DepTable::new(&cfg(512, 8)),
            |mut t| {
                for a in 0..256u64 {
                    t.check_param(TdIndex(a as u32), 0x1000 + a * 64, 8, AccessMode::Out)
                        .unwrap();
                }
                for a in 0..256u64 {
                    t.finish_param(0x1000 + a * 64, AccessMode::Out);
                }
                t
            },
            BatchSize::SmallInput,
        )
    });
    // Kick-off fan-out: one producer, 64 queued waiters (dummy entries).
    g.bench_function("fanout_64_waiters", |b| {
        b.iter_batched(
            || {
                let mut t = DepTable::new(&cfg(4096, 8));
                t.check_param(TdIndex(0), 0xAA00, 8, AccessMode::Out)
                    .unwrap();
                t
            },
            |mut t| {
                for i in 1..=64u32 {
                    t.check_param(TdIndex(i), 0xAA00, 8, AccessMode::In)
                        .unwrap();
                }
                let woken = t.finish_param(0xAA00, AccessMode::Out);
                assert_eq!(woken.woken.len(), 64);
                t
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_dep_table);
criterion_main!(benches);
