//! Wake-delivery performance: locked kick-off lists vs lock-free wake
//! lists on the wide fan-in `wake_stress` workload.
//!
//! Two views:
//!
//! * `wake_delivery/dispatcher` — the threaded `ShardDispatcher` alone,
//!   via the harness in `nexuspp_shard::stress` (payloads are `u64`s):
//!   4 finisher workers hammer one hot shard at the **same contended
//!   configuration the ≥ 1.3× acceptance gate measures** (256
//!   producers × 24 consumers each). What is timed (via `iter_custom`)
//!   is the dispatcher's own `delivery_ns` counter — the drain-to-
//!   report step the gate compares — NOT whole-run wall clock. The two
//!   wake modes do identical resolution work, so wall clock around the
//!   full run is mode-blind (on a small host it is pinned by
//!   resolution) and an earlier configuration of this bench recorded
//!   exactly that: locked ≈ lock-free to within 0.4%. Timing the
//!   delivery step itself makes the trajectory reflect the quantity
//!   the gate holds at ≥ 1.3×.
//! * `wake_delivery/runtime` — end to end through `ShardedRuntime`
//!   (work-stealing scheduler, region bookkeeping, real closures), so
//!   the wake path's share of total runtime overhead is visible. Here
//!   wall clock is the right measure and near-parity is the expected
//!   reading.
//!
//! Delivery time and lock-acquisition counters are printed per
//! configuration so a lock sneaking back into the wake path shows up
//! even where wall-clock noise hides it.

use criterion::{criterion_group, criterion_main, Criterion};
use nexuspp_runtime::{SchedulerKind, ShardCapacity, ShardedRuntime};
use nexuspp_shard::stress::{run_wake_stress, WakeStressSpec};
use nexuspp_shard::WakeMode;
use std::time::Duration;

const MODES: [WakeMode; 2] = [WakeMode::Locked, WakeMode::LockFree];

fn bench_dispatcher_layer(c: &mut Criterion) {
    // The wake_perf gate's spec: 4 finishers racing 256 bursts of 24
    // wakes through one hot shard.
    let spec = WakeStressSpec {
        finishers: 4,
        producers: 256,
        consumers_per: 24,
        shards: 4,
        spin_ns: 0,
    };
    let mut g = c.benchmark_group("wake_delivery/dispatcher");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Elements(spec.wake_count()));
    for mode in MODES {
        // One reporting run outside the timer for the counters.
        let r = run_wake_stress(mode, &spec);
        println!(
            "dispatcher/{}: {} wakes, delivery {:?}, wall {:?}, {} delivery lock acquisitions",
            mode.name(),
            r.woken,
            r.delivery_time(),
            r.elapsed,
            r.wake_counts.delivery_lock_acquisitions
        );
        g.bench_function(mode.name(), |b| {
            b.iter_custom(|iters| {
                let mut delivery = Duration::ZERO;
                for _ in 0..iters {
                    delivery += run_wake_stress(mode, &spec).delivery_time();
                }
                delivery
            });
        });
    }
    g.finish();
}

fn bench_runtime_level(c: &mut Criterion) {
    let mut g = c.benchmark_group("wake_delivery/runtime");
    g.sample_size(5);
    let producers = 32u32;
    let consumers_per = 16u32;
    g.throughput(criterion::Throughput::Elements(
        producers as u64 * consumers_per as u64,
    ));
    for mode in MODES {
        g.bench_function(mode.name(), |b| {
            b.iter(|| {
                let rt = ShardedRuntime::with_options(
                    4,
                    4,
                    SchedulerKind::default(),
                    ShardCapacity::Unbounded,
                    mode,
                );
                let cells: Vec<_> = (0..producers).map(|_| rt.region(vec![0u64])).collect();
                for cell in &cells {
                    {
                        let cell = cell.clone();
                        rt.task().output(&cell).spawn(move |t| {
                            t.write(&cell)[0] = 1;
                        });
                    }
                    for _ in 0..consumers_per {
                        let cell = cell.clone();
                        rt.task().input(&cell).spawn(move |t| {
                            assert_eq!(t.read(&cell)[0], 1);
                        });
                    }
                }
                rt.barrier();
                rt.wake_counts().delivered
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_dispatcher_layer, bench_runtime_level);
criterion_main!(benches);
