//! Task Machine simulation throughput: how fast the full-system model
//! itself runs (simulated tasks per wall-clock second). Relevant because
//! Figure 8's full sweep simulates 12.5 M-task workloads.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nexuspp_taskmachine::{simulate, simulate_trace, MachineConfig};
use nexuspp_workloads::{GaussianSpec, GridPattern, GridSpec};

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_throughput");
    g.sample_size(15);

    let wavefront = GridSpec::default().generate(GridPattern::Wavefront);
    g.throughput(Throughput::Elements(wavefront.len() as u64));
    g.bench_function("wavefront_8160_tasks_32w", |b| {
        b.iter(|| simulate_trace(MachineConfig::with_workers(32), &wavefront).unwrap())
    });

    let gauss = GaussianSpec::new(250);
    g.throughput(Throughput::Elements(gauss.task_count()));
    g.bench_function("gaussian250_31374_tasks_16w_streamed", |b| {
        b.iter(|| {
            let mut src = gauss.source();
            simulate(MachineConfig::with_workers(16), &mut src).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
