//! Workload-generator throughput: trace synthesis must never be the
//! bottleneck of a sweep (Gaussian n = 5000 streams 12.5 M tasks per run).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nexuspp_trace::TraceSource;
use nexuspp_workloads::{GaussianSpec, GridPattern, GridSpec};

fn bench_generators(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload_gen");
    g.sample_size(20);

    let grid = GridSpec::default();
    g.throughput(Throughput::Elements(grid.task_count()));
    g.bench_function("grid_wavefront_8160", |b| {
        b.iter(|| grid.generate(GridPattern::Wavefront))
    });

    let gauss = GaussianSpec::new(500);
    g.throughput(Throughput::Elements(gauss.task_count()));
    g.bench_function("gaussian_stream_125k", |b| {
        b.iter(|| {
            let mut src = gauss.source();
            let mut n = 0u64;
            while let Some(t) = src.next_task() {
                n += t.params.len() as u64;
            }
            n
        })
    });
    g.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
