//! Bounded-capacity resolution throughput, sweeping the per-shard
//! residency bound C ∈ {1, 4, 16, ∞} over the capacity-stress stream.
//!
//! * `software/*` — single-threaded stall/retry churn through the
//!   bounded [`ShardedEngine`]: every rejected admission retires one
//!   ready task and retries, so the measured cost includes the full
//!   park/resume bookkeeping the finite tables force.
//! * `modeled/*` — the bounded multi-Maestro cycle model: simulator
//!   wall time per capacity. The deterministic accounting claims
//!   (capacity 1 stalls, ∞ never, stalls == retries) are asserted up
//!   front, so a broken counter fails the bench run before measuring.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use nexuspp_core::{NexusConfig, ShardCapacity};
use nexuspp_shard::ShardedEngine;
use nexuspp_taskmachine::{simulate_sharded, MultiMaestroConfig};
use nexuspp_trace::Trace;
use nexuspp_workloads::CapacityStressSpec;

const SHARDS: usize = 4;
const CAPS: [ShardCapacity; 4] = [
    ShardCapacity::Bounded(1),
    ShardCapacity::Bounded(4),
    ShardCapacity::Bounded(16),
    ShardCapacity::Unbounded,
];

fn stress() -> Trace {
    CapacityStressSpec {
        chain_len: 48,
        ..CapacityStressSpec::pressure(SHARDS as u32)
    }
    .generate()
}

/// Drain the trace through a bounded engine with caller-side stall/retry.
fn churn(trace: &Trace, cap: ShardCapacity) {
    let mut e = ShardedEngine::with_capacity(SHARDS, &NexusConfig::unbounded(), cap);
    let mut ready = Vec::new();
    for t in &trace.tasks {
        let id = loop {
            match e.try_admit(t.fptr, t.id, t.params.clone()) {
                Ok((id, _)) => break id,
                Err(_) => {
                    let r = ready.pop().expect("stall with nothing ready");
                    ready.extend(e.finish(r).newly_ready);
                }
            }
        };
        if let nexuspp_shard::ShardedCheck::Done { ready: r, .. } = e.check(id) {
            if r {
                ready.push(id);
            }
        }
    }
    while let Some(id) = ready.pop() {
        ready.extend(e.finish(id).newly_ready);
    }
    assert_eq!(e.in_flight(), 0);
}

fn bench_software(c: &mut Criterion) {
    let trace = stress();
    let mut g = c.benchmark_group("capacity/software");
    g.sample_size(15);
    g.throughput(criterion::Throughput::Elements(trace.len() as u64));
    for cap in CAPS {
        g.bench_function(&format!("churn_c{cap}"), |b| {
            b.iter_batched(|| (), |()| churn(&trace, cap), BatchSize::SmallInput)
        });
    }
    g.finish();
}

fn bench_modeled(c: &mut Criterion) {
    let trace = stress();
    let cfg = |cap: ShardCapacity| MultiMaestroConfig {
        workers: 16,
        ..MultiMaestroConfig::with_capacity(SHARDS, cap).no_prep()
    };
    // Deterministic accounting gates before any measurement.
    for cap in CAPS {
        let r = simulate_sharded(cfg(cap), &trace);
        assert_eq!(r.tasks, trace.len() as u64);
        assert_eq!(
            r.shard_stalls, r.shard_retries_resolved,
            "C={cap}: unresolved stall episodes"
        );
        match cap {
            ShardCapacity::Bounded(1) => assert!(
                r.master_capacity_stalls > 0,
                "capacity 1 must stall the master on this stream"
            ),
            ShardCapacity::Unbounded => assert_eq!(r.master_capacity_stalls, 0),
            _ => {}
        }
        println!(
            "modeled: C={cap:>2}  {:.2} Mtasks/s  {} master stalls",
            r.tasks_per_sec() / 1e6,
            r.master_capacity_stalls
        );
    }

    let mut g = c.benchmark_group("capacity/modeled");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Elements(trace.len() as u64));
    for cap in CAPS {
        g.bench_function(&format!("sim_c{cap}"), |b| {
            b.iter(|| simulate_sharded(cfg(cap), &trace))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_software, bench_modeled);
criterion_main!(benches);
