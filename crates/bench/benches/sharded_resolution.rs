//! Sharded dependency-resolution throughput.
//!
//! Four views of what sharding buys:
//!
//! * `software/*` — single-threaded submit+finish churn through the
//!   single engine and the sharded engine (1 and 4 shards): the sharded
//!   composition's bookkeeping overhead when no parallelism is available.
//! * `batched/*` — per-task submission vs the batched front-end on 4
//!   shards: the per-shard visit amortization in isolation.
//! * `modeled/*` — the multi-Maestro cycle model on the balanced stress
//!   stream at 1 vs 4 shards. This is the acceptance measurement: the
//!   modeled resolution throughput at 4 shards must be ≥ 2× the 1-shard
//!   figure (also enforced deterministically by
//!   `taskmachine::multimaestro` tests, so CI catches regressions without
//!   running benches). The wall time criterion reports here is simulator
//!   speed; the printed `modeled:` lines are the hardware claim.
//! * `concurrent/*` — 4 OS threads hammering a [`ShardDispatcher`] with
//!   independent tasks at 1 vs 4 shards: the lock-contention picture on
//!   the host (only meaningful on multi-core machines).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use nexuspp_core::{DependencyEngine, NexusConfig};
use nexuspp_shard::{ShardDispatcher, ShardedEngine};
use nexuspp_taskmachine::{simulate_sharded, MultiMaestroConfig};
use nexuspp_trace::Trace;
use nexuspp_workloads::ShardedStressSpec;
use std::sync::Arc;

fn balanced(n: u32, shards: u32) -> Trace {
    ShardedStressSpec {
        exec_ns: 0,
        ..ShardedStressSpec::balanced(n, shards)
    }
    .generate()
}

fn bench_software(c: &mut Criterion) {
    let trace = balanced(4000, 4);
    let mut g = c.benchmark_group("sharded_resolution/software");
    g.sample_size(15);
    g.throughput(criterion::Throughput::Elements(trace.len() as u64));

    g.bench_function("single_engine", |b| {
        b.iter_batched(
            || DependencyEngine::new(&NexusConfig::unbounded()),
            |mut e| {
                let mut ready = Vec::new();
                for t in &trace.tasks {
                    let (td, r) = e.submit(t.fptr, t.id, t.params.clone()).unwrap();
                    if r {
                        ready.push(td);
                    }
                }
                while let Some(td) = ready.pop() {
                    ready.extend(e.finish(td).newly_ready);
                }
                e
            },
            BatchSize::SmallInput,
        )
    });
    for shards in [1usize, 4] {
        g.bench_function(&format!("sharded_{shards}"), |b| {
            b.iter_batched(
                || ShardedEngine::new(shards, &NexusConfig::unbounded()),
                |mut e| {
                    let mut ready = Vec::new();
                    for t in &trace.tasks {
                        let (id, r) = e.submit(t.fptr, t.id, t.params.clone()).unwrap();
                        if r {
                            ready.push(id);
                        }
                    }
                    while let Some(id) = ready.pop() {
                        ready.extend(e.finish(id).newly_ready);
                    }
                    e
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_batched(c: &mut Criterion) {
    let trace = balanced(4000, 4);
    let mut g = c.benchmark_group("sharded_resolution/batched");
    g.sample_size(15);
    g.throughput(criterion::Throughput::Elements(trace.len() as u64));

    for batch in [1usize, 64] {
        g.bench_function(&format!("batch_{batch}"), |b| {
            b.iter_batched(
                || ShardedEngine::new(4, &NexusConfig::unbounded()),
                |mut e| {
                    let mut ready = Vec::new();
                    for chunk in trace.tasks.chunks(batch) {
                        let members = chunk
                            .iter()
                            .map(|t| (t.fptr, t.id, t.params.clone()))
                            .collect();
                        let (results, _) = e.submit_batch(members);
                        ready.extend(results.into_iter().filter(|(_, r)| *r).map(|(id, _)| id));
                    }
                    while let Some(id) = ready.pop() {
                        ready.extend(e.finish(id).newly_ready);
                    }
                    e
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_modeled(c: &mut Criterion) {
    let trace = balanced(4000, 4);
    let cfg = |shards: usize| MultiMaestroConfig {
        workers: 16,
        ..MultiMaestroConfig::with_shards(shards).no_prep()
    };
    // The acceptance measurement (deterministic): modeled resolution
    // throughput, 4 shards vs 1.
    let t1 = simulate_sharded(cfg(1), &trace).tasks_per_sec();
    let t4 = simulate_sharded(cfg(4), &trace).tasks_per_sec();
    println!("modeled: 1 shard  {:.2} Mtasks/s", t1 / 1e6);
    println!(
        "modeled: 4 shards {:.2} Mtasks/s  ({:.2}x)",
        t4 / 1e6,
        t4 / t1
    );
    assert!(
        t4 >= 2.0 * t1,
        "4-shard modeled throughput must be >= 2x 1-shard (got {:.2}x)",
        t4 / t1
    );

    let mut g = c.benchmark_group("sharded_resolution/modeled");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Elements(trace.len() as u64));
    for shards in [1usize, 4] {
        g.bench_function(&format!("sim_{shards}_shards"), |b| {
            b.iter(|| simulate_sharded(cfg(shards), &trace))
        });
    }
    g.finish();
}

fn bench_concurrent(c: &mut Criterion) {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 2000;
    let mut g = c.benchmark_group("sharded_resolution/concurrent");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Elements(THREADS * PER_THREAD));
    for shards in [1usize, 4] {
        g.bench_function(&format!("threads4_shards{shards}"), |b| {
            b.iter_batched(
                || {
                    Arc::new(ShardDispatcher::<u64>::new(
                        shards,
                        &NexusConfig::unbounded(),
                    ))
                },
                |d| {
                    let handles: Vec<_> = (0..THREADS)
                        .map(|t| {
                            let d = Arc::clone(&d);
                            std::thread::spawn(move || {
                                for i in 0..PER_THREAD {
                                    let tag = t * PER_THREAD + i;
                                    let addr = 0x40_0000 + tag * 64;
                                    let r = d.submit(
                                        1,
                                        tag,
                                        &[nexuspp_trace::Param::output(addr, 16)],
                                        tag,
                                    );
                                    let _ = r.ready.expect("independent task");
                                    let _ = d.finish(r.ticket);
                                }
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join().unwrap();
                    }
                    d
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_software,
    bench_batched,
    bench_modeled,
    bench_concurrent
);
criterion_main!(benches);
