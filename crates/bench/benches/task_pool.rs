//! Criterion microbenchmarks of the Task Pool: descriptor allocation,
//! dummy-task chaining and retirement.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use nexuspp_core::pool::TaskPool;
use nexuspp_core::NexusConfig;
use nexuspp_trace::Param;

fn params(n: usize, base: u64) -> Vec<Param> {
    (0..n)
        .map(|i| Param::input(base + i as u64 * 8, 4))
        .collect()
}

fn bench_task_pool(c: &mut Criterion) {
    let mut g = c.benchmark_group("task_pool");
    g.sample_size(30);
    g.bench_function("admit_retire_3param", |b| {
        b.iter_batched(
            || TaskPool::new(&NexusConfig::default()),
            |mut pool| {
                let mut tds = Vec::with_capacity(512);
                for t in 0..512u64 {
                    tds.push(pool.admit(1, t, params(3, t * 0x100)).unwrap().0);
                }
                for td in tds {
                    pool.retire(td);
                }
                pool
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("admit_retire_20param_dummy_chain", |b| {
        b.iter_batched(
            || TaskPool::new(&NexusConfig::default()),
            |mut pool| {
                let mut tds = Vec::with_capacity(128);
                for t in 0..128u64 {
                    tds.push(pool.admit(1, t, params(20, t * 0x1000)).unwrap().0);
                }
                for td in tds {
                    pool.retire(td);
                }
                pool
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_task_pool);
criterion_main!(benches);
