//! Minimal demonstration of the online-introspection layer: attach a
//! [`Collector`](nexuspp_obs::Collector) to a `ShardedRuntime`, submit
//! dependent work, and watch the live task-graph dashboard update
//! while the run executes.
//!
//! ```text
//! cargo run --example watch_live
//! ```
//!
//! This is the library-level version of `repro watch`; see that
//! subcommand for the flag-driven variant (`--quick`, `--frames`,
//! `--csv DIR`).

use nexuspp_bench::watch::{run_watch, WatchOptions};
use std::io::IsTerminal;
use std::time::Duration;

fn main() {
    let opts = WatchOptions {
        frames: 8,
        frame_interval: Duration::from_millis(120),
        ansi: std::io::stdout().is_terminal(),
        ..WatchOptions::default()
    };
    let mut stdout = std::io::stdout().lock();
    let summary = run_watch(&opts, &mut stdout).expect("stdout");
    assert_eq!(
        summary.violations, 0,
        "a healthy runtime emits no illegal transitions"
    );
}
