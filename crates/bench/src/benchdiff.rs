//! `repro bench-diff`: compare two criterion summary JSON files.
//!
//! The CI bench-trajectory steps persist `BENCH_*.json` summaries (via
//! the vendored criterion's `CRITERION_SUMMARY_JSON` sink) so each PR
//! carries the benchmark numbers it shipped with. This module closes
//! the loop the ROADMAP called out: given the checked-in summary and a
//! freshly generated one, print per-benchmark deltas and flag
//! regressions beyond a configurable threshold.
//!
//! The parser here is a minimal recursive-descent JSON *value* reader
//! (the well-formedness validator in `nexuspp-obs` deliberately
//! extracts nothing). It understands exactly the summary schema:
//! everything beyond `benchmarks[].{group, name, best_ns}` is ignored,
//! and malformed input is a readable `Err`, not a panic — CI feeds
//! this from freshly written files.
//!
//! Interpretation note baked into the table: `best_ns` entries are
//! best-of-N single machine samples, so small deltas are noise. The
//! default threshold is deliberately generous (25%) and the CI step
//! runs warn-only; `--strict` turns regressions into a nonzero exit
//! for local bisection sessions.

use crate::table::{f1, TextTable};
use std::collections::BTreeMap;

/// One benchmark extracted from a summary file.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Criterion group (`wake_delivery/dispatcher`, …).
    pub group: String,
    /// Benchmark name within the group (`lock-free`, …).
    pub name: String,
    /// Best observed per-iteration time, nanoseconds.
    pub best_ns: f64,
}

impl BenchRecord {
    /// `group/name` — the diff key.
    pub fn key(&self) -> String {
        format!("{}/{}", self.group, self.name)
    }
}

/// How one benchmark moved between two summaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffStatus {
    /// Faster by more than the threshold.
    Improved,
    /// Within the threshold either way.
    Ok,
    /// Slower by more than the threshold.
    Regressed,
    /// Only in the new summary.
    Added,
    /// Only in the old summary.
    Removed,
}

impl DiffStatus {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            DiffStatus::Improved => "improved",
            DiffStatus::Ok => "ok",
            DiffStatus::Regressed => "REGRESSED",
            DiffStatus::Added => "added",
            DiffStatus::Removed => "removed",
        }
    }
}

/// One row of a bench diff.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// `group/name`.
    pub key: String,
    /// Old `best_ns`, if the benchmark existed before.
    pub old_ns: Option<f64>,
    /// New `best_ns`, if the benchmark still exists.
    pub new_ns: Option<f64>,
    /// `(new - old) / old`, percent (None unless both sides exist).
    pub delta_pct: Option<f64>,
    /// Classification at the configured threshold.
    pub status: DiffStatus,
}

/// Parse a `CRITERION_SUMMARY_JSON` file into its benchmark records.
pub fn parse_summary(text: &str) -> Result<Vec<BenchRecord>, String> {
    let v = JsonParser::parse(text)?;
    let Json::Object(top) = v else {
        return Err("summary root must be a JSON object".into());
    };
    let Some(Json::Array(benches)) = top.iter().find(|(k, _)| k == "benchmarks").map(|(_, v)| v)
    else {
        return Err("summary has no \"benchmarks\" array".into());
    };
    let mut out = Vec::with_capacity(benches.len());
    for (i, b) in benches.iter().enumerate() {
        let Json::Object(fields) = b else {
            return Err(format!("benchmarks[{i}] is not an object"));
        };
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let str_field = |key: &str| match get(key) {
            Some(Json::String(s)) => Ok(s.clone()),
            _ => Err(format!("benchmarks[{i}].{key} missing or not a string")),
        };
        let num_field = |key: &str| match get(key) {
            Some(Json::Number(n)) => Ok(*n),
            _ => Err(format!("benchmarks[{i}].{key} missing or not a number")),
        };
        out.push(BenchRecord {
            group: str_field("group")?,
            name: str_field("name")?,
            best_ns: num_field("best_ns")?,
        });
    }
    Ok(out)
}

/// Diff two summaries at `threshold_pct` (e.g. 25.0 = a benchmark must
/// move more than 25% to count as improved/regressed).
pub fn diff(old: &[BenchRecord], new: &[BenchRecord], threshold_pct: f64) -> Vec<DiffRow> {
    let old_by_key: BTreeMap<String, f64> = old.iter().map(|r| (r.key(), r.best_ns)).collect();
    let new_by_key: BTreeMap<String, f64> = new.iter().map(|r| (r.key(), r.best_ns)).collect();
    let mut keys: Vec<&String> = old_by_key.keys().chain(new_by_key.keys()).collect();
    keys.sort();
    keys.dedup();
    keys.iter()
        .map(|&key| {
            let old_ns = old_by_key.get(key).copied();
            let new_ns = new_by_key.get(key).copied();
            let (delta_pct, status) = match (old_ns, new_ns) {
                (Some(o), Some(n)) if o > 0.0 => {
                    let d = (n - o) / o * 100.0;
                    let s = if d > threshold_pct {
                        DiffStatus::Regressed
                    } else if d < -threshold_pct {
                        DiffStatus::Improved
                    } else {
                        DiffStatus::Ok
                    };
                    (Some(d), s)
                }
                (Some(_), Some(_)) => (None, DiffStatus::Ok),
                (None, Some(_)) => (None, DiffStatus::Added),
                (Some(_), None) => (None, DiffStatus::Removed),
                (None, None) => unreachable!("key came from one of the maps"),
            };
            DiffRow {
                key: key.clone(),
                old_ns,
                new_ns,
                delta_pct,
                status,
            }
        })
        .collect()
}

/// Whether any row regressed past the threshold.
pub fn has_regressions(rows: &[DiffRow]) -> bool {
    rows.iter().any(|r| r.status == DiffStatus::Regressed)
}

/// Render a diff as an aligned text table.
pub fn render(rows: &[DiffRow], threshold_pct: f64) -> String {
    let mut t = TextTable::new(vec!["benchmark", "old us", "new us", "delta", "status"]);
    for r in rows {
        let us = |ns: Option<f64>| ns.map_or("-".to_string(), |v| f1(v / 1e3));
        t.row(vec![
            r.key.clone(),
            us(r.old_ns),
            us(r.new_ns),
            r.delta_pct.map_or("-".to_string(), |d| format!("{d:+.1}%")),
            r.status.name().to_string(),
        ]);
    }
    format!(
        "bench-diff (threshold {threshold_pct:.0}%; best-of-N samples — treat small deltas as noise)\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------
// Minimal JSON value parser (summary schema needs: objects with string
// keys, arrays, strings, numbers, null; true/false accepted for
// completeness).

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Object(Vec<(String, Json)>),
    Array(Vec<Json>),
    String(String),
    Number(f64),
    Bool(bool),
    Null,
}

struct JsonParser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> JsonParser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = JsonParser {
            b: text.as_bytes(),
            i: 0,
        };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(format!("trailing bytes at offset {}", p.i));
        }
        Ok(v)
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.i < self.b.len() && self.b[self.i] == c {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.i)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.i))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let val = self.value()?;
            fields.push((key, val));
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        while let Some(&c) = self.b.get(self.i) {
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .b
                        .get(self.i)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.i += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", *other as char)),
                    }
                }
                c => {
                    // Multi-byte UTF-8 passes through unchanged.
                    let start = self.i - 1;
                    let width = utf8_width(c);
                    let end = start + width;
                    let chunk = self
                        .b
                        .get(start..end)
                        .ok_or_else(|| "truncated UTF-8".to_string())?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    self.i = end;
                }
            }
        }
        Err("unterminated string".into())
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while let Some(&c) = self.b.get(self.i) {
            if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.i += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.b[start..self.i])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(Json::Number)
            .map_err(|e| format!("bad number at offset {start}: {e}"))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "benchmarks": [
    {"group": "g/a", "name": "locked", "best_ns": 1000, "iters": 3, "throughput": {"elements": 8}},
    {"group": "g/a", "name": "lock-free", "best_ns": 400, "iters": 3, "throughput": null}
  ]
}"#;

    #[test]
    fn parses_the_summary_schema() {
        let recs = parse_summary(SAMPLE).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].key(), "g/a/locked");
        assert_eq!(recs[1].best_ns, 400.0);
    }

    #[test]
    fn malformed_input_is_an_error_not_a_panic() {
        for bad in [
            "",
            "[]",
            "{\"benchmarks\": 4}",
            "{\"benchmarks\": [{\"group\": 1}]}",
            "{\"benchmarks\": [{\"group\": \"g\", \"name\": \"n\"}]}",
            "{\"benchmarks\": [] } trailing",
        ] {
            assert!(parse_summary(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn diff_classifies_all_statuses() {
        let old = vec![
            BenchRecord {
                group: "g".into(),
                name: "steady".into(),
                best_ns: 1000.0,
            },
            BenchRecord {
                group: "g".into(),
                name: "faster".into(),
                best_ns: 1000.0,
            },
            BenchRecord {
                group: "g".into(),
                name: "slower".into(),
                best_ns: 1000.0,
            },
            BenchRecord {
                group: "g".into(),
                name: "gone".into(),
                best_ns: 1000.0,
            },
        ];
        let new = vec![
            BenchRecord {
                group: "g".into(),
                name: "steady".into(),
                best_ns: 1100.0,
            },
            BenchRecord {
                group: "g".into(),
                name: "faster".into(),
                best_ns: 500.0,
            },
            BenchRecord {
                group: "g".into(),
                name: "slower".into(),
                best_ns: 2000.0,
            },
            BenchRecord {
                group: "g".into(),
                name: "fresh".into(),
                best_ns: 10.0,
            },
        ];
        let rows = diff(&old, &new, 25.0);
        let by_key = |k: &str| rows.iter().find(|r| r.key == format!("g/{k}")).unwrap();
        assert_eq!(by_key("steady").status, DiffStatus::Ok);
        assert_eq!(by_key("faster").status, DiffStatus::Improved);
        assert_eq!(by_key("slower").status, DiffStatus::Regressed);
        assert_eq!(by_key("gone").status, DiffStatus::Removed);
        assert_eq!(by_key("fresh").status, DiffStatus::Added);
        assert!(has_regressions(&rows));
        assert_eq!(by_key("slower").delta_pct.unwrap().round(), 100.0);
        let text = render(&rows, 25.0);
        assert!(text.contains("REGRESSED"));
        assert!(text.contains("g/fresh"));
        assert!(text.contains("+100.0%"));
    }

    #[test]
    fn identical_summaries_have_no_regressions() {
        let recs = parse_summary(SAMPLE).unwrap();
        let rows = diff(&recs, &recs, 5.0);
        assert!(!has_regressions(&rows));
        assert!(rows.iter().all(|r| r.status == DiffStatus::Ok));
        assert!(rows.iter().all(|r| r.delta_pct == Some(0.0)));
    }

    #[test]
    fn real_checked_in_summary_parses() {
        // Guard the schema against drift: the checked-in trajectory at
        // the workspace root must stay parseable.
        let root = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_wake_delivery.json"
        );
        if let Ok(text) = std::fs::read_to_string(root) {
            let recs = parse_summary(&text).expect("checked-in summary must parse");
            assert!(!recs.is_empty());
        }
    }
}
