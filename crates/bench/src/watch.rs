//! `repro watch` — a live text dashboard over a streaming run.
//!
//! Drives a `ShardedRuntime` with a background [`Collector`] attached
//! (the online-introspection layer from `nexuspp-obs`), submits a
//! burst of dependent work each frame, and renders the collector's
//! live [`TrackerSnapshot`](nexuspp_obs::TrackerSnapshot) plus metric
//! rates between bursts — tasks
//! move through Stalled → Ready → Running on screen while the run is
//! still executing.
//!
//! On a terminal each frame repaints in place (ANSI clear); piped
//! output gets one plain frame after another, so CI logs stay
//! readable. `--csv DIR` additionally writes the sampler's full
//! time-series window to `DIR/metrics.jsonl` at exit.

use nexuspp_core::ShardCapacity;
use nexuspp_obs::{render_dashboard, Collector, CollectorConfig, Recorder};
use nexuspp_runtime::ShardedRuntime;
use nexuspp_sched::SchedulerKind;
use nexuspp_shard::WakeMode;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Knobs for one watch session.
#[derive(Debug, Clone)]
pub struct WatchOptions {
    /// Frames to render before draining and exiting.
    pub frames: u32,
    /// Dwell time per frame.
    pub frame_interval: Duration,
    /// Repaint in place with ANSI escapes (terminal) vs append frames
    /// (pipe / CI log).
    pub ansi: bool,
    /// Also write the sampler window to `DIR/metrics.jsonl`.
    pub csv_dir: Option<PathBuf>,
    /// Worker threads for the driven runtime.
    pub workers: usize,
}

impl Default for WatchOptions {
    fn default() -> Self {
        WatchOptions {
            frames: 12,
            frame_interval: Duration::from_millis(150),
            ansi: false,
            csv_dir: None,
            workers: 4,
        }
    }
}

impl WatchOptions {
    /// Smoke-test shape: few short frames, still enough churn that
    /// every dashboard section renders nonzero at least once.
    pub fn quick() -> Self {
        WatchOptions {
            frames: 4,
            frame_interval: Duration::from_millis(60),
            ..WatchOptions::default()
        }
    }
}

/// What a finished session observed — returned so tests (and the CI
/// smoke step) can assert the dashboard actually watched a live run.
#[derive(Debug, Clone)]
pub struct WatchSummary {
    /// Frames rendered.
    pub frames: u32,
    /// Tasks the tracker saw over the whole session.
    pub tasks_seen: u64,
    /// Tasks that reached Finished by the final drain.
    pub finished: u64,
    /// Wake edges discovered.
    pub edges: u64,
    /// Illegal transitions (must be 0 on a healthy runtime).
    pub violations: u64,
    /// Frames whose snapshot showed in-flight (unfinished) tasks.
    pub live_frames: u32,
    /// Events dropped by the rings (0 unless the session outran them).
    pub events_dropped: u64,
}

/// Tasks submitted per frame burst: a few short dependence chains plus
/// independent work, each task parking briefly so the frame catches it
/// mid-flight.
const BURST_CHAINS: usize = 4;
const BURST_DEPTH: usize = 12;
const BURST_INDEPENDENT: usize = 8;
const TASK_SLEEP: Duration = Duration::from_micros(500);

fn submit_burst(rt: &ShardedRuntime) {
    let chains: Vec<_> = (0..BURST_CHAINS).map(|_| rt.region(vec![0u64])).collect();
    for _ in 0..BURST_DEPTH {
        for r in &chains {
            rt.task().inout(r).spawn(move |_| {
                std::thread::sleep(TASK_SLEEP);
            });
        }
    }
    for _ in 0..BURST_INDEPENDENT {
        let r = rt.region(vec![0u64]);
        rt.task().output(&r).spawn(move |_| {
            std::thread::sleep(TASK_SLEEP);
        });
    }
}

/// Run a watch session, rendering frames into `out`. Factored off the
/// binary so tests drive it against a buffer.
pub fn run_watch(opts: &WatchOptions, out: &mut dyn Write) -> std::io::Result<WatchSummary> {
    let cfg = CollectorConfig {
        interval: Duration::from_millis(2),
        ..CollectorConfig::default()
    };
    let collector = Collector::spawn(Arc::new(Recorder::new(opts.workers)), cfg);
    let rt = ShardedRuntime::with_observer(
        opts.workers,
        4,
        SchedulerKind::WorkStealing,
        ShardCapacity::Unbounded,
        WakeMode::LockFree,
        &collector,
    );

    let mut live_frames = 0u32;
    for frame in 0..opts.frames {
        submit_burst(&rt);
        // Snapshot while the burst is still draining (each chain's
        // serial sleep time exceeds this), then dwell out the rest of
        // the frame; the collector ticks every 2 ms in between.
        let mid_burst = Duration::from_millis(5).min(opts.frame_interval);
        std::thread::sleep(mid_burst);
        let snap = collector.tracker();
        if snap.in_flight() > 0 {
            live_frames += 1;
        }
        let rates = collector.with_sampler(|s| s.rates()).unwrap_or_default();
        let text = render_dashboard(frame as u64, &snap, &rates, &collector.stats());
        if opts.ansi {
            // Clear screen + home, then the frame.
            write!(out, "\x1b[2J\x1b[H{text}")?;
        } else {
            writeln!(out, "{text}")?;
        }
        out.flush()?;
        std::thread::sleep(opts.frame_interval.saturating_sub(mid_burst));
    }

    // Quiesce: finish the submitted work, then stop the collector so
    // its final poll drains everything.
    rt.barrier();
    drop(rt);
    let report = collector.finish();
    let jsonl = report.sampler.as_ref().map(|s| s.to_jsonl());

    let snap = report.tracker.snapshot();
    let rates: Vec<(String, f64)> = Vec::new();
    let text = render_dashboard(opts.frames as u64, &snap, &rates, &report.stream);
    if opts.ansi {
        write!(out, "\x1b[2J\x1b[H{text}")?;
    } else {
        writeln!(out, "{text}")?;
    }
    writeln!(
        out,
        "\n[watch] final: {} tasks, {} finished, {} edges, {} violations, {} events ({} dropped)",
        snap.tasks_seen,
        snap.count(nexuspp_obs::TaskState::Finished),
        snap.edges,
        snap.violations,
        report.stream.released,
        report.stream.dropped,
    )?;

    if let Some(dir) = &opts.csv_dir {
        if let Some(jsonl) = jsonl {
            std::fs::create_dir_all(dir)?;
            let path = dir.join("metrics.jsonl");
            std::fs::write(&path, jsonl)?;
            writeln!(out, "[watch] wrote {}", path.display())?;
        }
    }
    out.flush()?;

    Ok(WatchSummary {
        frames: opts.frames,
        tasks_seen: snap.tasks_seen,
        finished: snap.count(nexuspp_obs::TaskState::Finished),
        edges: snap.edges,
        violations: snap.violations,
        live_frames,
        events_dropped: report.stream.dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_session_watches_a_live_run() {
        let mut buf = Vec::new();
        let opts = WatchOptions {
            csv_dir: None,
            ..WatchOptions::quick()
        };
        let summary = run_watch(&opts, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();

        // Every burst finished by the final drain.
        let per_burst = (BURST_CHAINS * BURST_DEPTH + BURST_INDEPENDENT) as u64;
        assert_eq!(summary.tasks_seen, per_burst * opts.frames as u64);
        assert_eq!(summary.finished, summary.tasks_seen);
        assert_eq!(summary.violations, 0);
        assert!(summary.edges > 0, "chains must produce wake edges");
        assert_eq!(summary.events_dropped, 0);
        // The session was live: at least one frame caught work in
        // flight (bursts outlast the frame interval by construction).
        assert!(summary.live_frames > 0);

        // Plain (non-ANSI) mode: one header per frame plus the final
        // one, and no escape sequences.
        assert_eq!(
            text.matches("== nexus++ live ==").count(),
            opts.frames as usize + 1
        );
        assert!(!text.contains('\x1b'));
        assert!(text.contains("[watch] final:"));
    }

    #[test]
    fn csv_dir_gets_a_valid_metrics_jsonl() {
        let dir = std::env::temp_dir().join(format!("watch-test-{}", std::process::id()));
        let opts = WatchOptions {
            frames: 2,
            frame_interval: Duration::from_millis(40),
            csv_dir: Some(dir.clone()),
            ..WatchOptions::quick()
        };
        let mut buf = Vec::new();
        run_watch(&opts, &mut buf).unwrap();
        let jsonl = std::fs::read_to_string(dir.join("metrics.jsonl")).unwrap();
        assert!(!jsonl.trim().is_empty());
        for line in jsonl.lines() {
            nexuspp_obs::validate_json(line).expect("each sampler line is valid JSON");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
