//! `repro` — regenerate every table and figure of the Nexus++ paper.
//!
//! ```text
//! repro <experiment> [--full] [--quick] [--csv <dir>]
//!
//! experiments:
//!   table2     Gaussian task counts / weights        (Table II)
//!   table4     system parameters + storage budget    (Table IV, ≤210 KB)
//!   fig4       dependency patterns & ramp profile    (Figure 4)
//!   fig6       design-space exploration              (Figure 6)
//!   fig7       pattern speedups vs cores             (Figure 7)
//!   fig8       Gaussian speedups vs cores            (Figure 8)
//!   headline   54× / 143× / 221× independent tasks   (§V)
//!   nexus-vs   classic Nexus feasibility & lookups   (§I, §III-B)
//!   rts        software RTS bottleneck               (§I motivation)
//!   ablate     buffering depth / bus / kick-off size (design ablations)
//!   video      multi-frame H.264 pipelining          (extension)
//!   shards     multi-Maestro shard scaling           (extension)
//!   steal      ready-queue vs work-stealing sched    (extension)
//!   capacity   bounded shard tables, stall/retry     (extension)
//!   wakes      locked vs lock-free wake delivery     (extension)
//!   frontend   version renaming vs raw addressing    (extension)
//!   observe    lifecycle tracing & critical path     (extension)
//!   all        everything above
//!
//! flags:
//!   --full     include long configurations (Gaussian n = 3000, 5000)
//!   --quick    shrink sweeps (smoke test)
//!   --csv DIR  also write CSV files under DIR
//! ```

use nexuspp_bench::experiments::{self, Experiment};
use nexuspp_bench::ExpOptions;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: repro <table2|table4|fig4|fig6|fig7|fig8|headline|nexus-vs|rts|ablate|video|shards|steal|capacity|wakes|frontend|observe|all> \
         [--full] [--quick] [--csv DIR]"
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(which) = args.next() else { usage() };
    let mut opts = ExpOptions::default();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--full" => opts.full = true,
            "--quick" => opts.quick = true,
            "--csv" => {
                let dir = args.next().unwrap_or_else(|| usage());
                opts.out_dir = Some(dir.into());
            }
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }

    let run = |exps: Vec<Experiment>, opts: &ExpOptions| {
        for e in exps {
            println!("{}", e.render());
            if let Some(dir) = &opts.out_dir {
                if let Err(err) = e.write_csv(dir) {
                    eprintln!("failed to write CSV for {}: {err}", e.id);
                }
            }
        }
    };

    let t0 = Instant::now();
    match which.as_str() {
        "table2" => run(vec![experiments::table2(&opts)], &opts),
        "table4" => run(vec![experiments::table4(&opts)], &opts),
        "fig4" => run(vec![experiments::fig4(&opts)], &opts),
        "fig6" => run(vec![experiments::fig6(&opts)], &opts),
        "fig7" => run(vec![experiments::fig7(&opts)], &opts),
        "fig8" => run(vec![experiments::fig8(&opts)], &opts),
        "headline" => run(vec![experiments::headline(&opts)], &opts),
        "nexus-vs" => run(vec![experiments::nexus_vs(&opts)], &opts),
        "rts" => run(vec![experiments::rts(&opts)], &opts),
        "ablate" => run(vec![experiments::ablate(&opts)], &opts),
        "video" => run(vec![experiments::video(&opts)], &opts),
        "shards" => run(vec![experiments::shards(&opts)], &opts),
        "steal" => run(vec![experiments::steal(&opts)], &opts),
        "capacity" => run(vec![experiments::capacity(&opts)], &opts),
        "wakes" => run(vec![experiments::wakes(&opts)], &opts),
        "frontend" => run(vec![experiments::frontend(&opts)], &opts),
        "observe" => run(vec![experiments::observe(&opts)], &opts),
        "all" => run(experiments::all(&opts), &opts),
        _ => usage(),
    }
    eprintln!("[repro] completed in {:.1}s", t0.elapsed().as_secs_f64());
}
