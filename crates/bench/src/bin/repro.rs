//! `repro` — regenerate every table and figure of the Nexus++ paper.
//!
//! ```text
//! repro <experiment> [--full] [--quick] [--csv <dir>]
//!
//! experiments:
//!   table2     Gaussian task counts / weights        (Table II)
//!   table4     system parameters + storage budget    (Table IV, ≤210 KB)
//!   fig4       dependency patterns & ramp profile    (Figure 4)
//!   fig6       design-space exploration              (Figure 6)
//!   fig7       pattern speedups vs cores             (Figure 7)
//!   fig8       Gaussian speedups vs cores            (Figure 8)
//!   headline   54× / 143× / 221× independent tasks   (§V)
//!   nexus-vs   classic Nexus feasibility & lookups   (§I, §III-B)
//!   rts        software RTS bottleneck               (§I motivation)
//!   ablate     buffering depth / bus / kick-off size (design ablations)
//!   video      multi-frame H.264 pipelining          (extension)
//!   shards     multi-Maestro shard scaling           (extension)
//!   steal      ready-queue vs work-stealing sched    (extension)
//!   capacity   bounded shard tables, stall/retry     (extension)
//!   wakes      locked vs lock-free wake delivery     (extension)
//!   frontend   version renaming vs raw addressing    (extension)
//!   observe    lifecycle tracing & critical path     (extension)
//!   serve      multi-tenant resolver service         (extension)
//!   incr       incremental re-execution, dirty cones (extension)
//!   all        everything above
//!
//! flags:
//!   --full     include long configurations (Gaussian n = 3000, 5000)
//!   --quick    shrink sweeps (smoke test)
//!   --csv DIR  also write CSV files under DIR
//!
//! other subcommands (own flags):
//!   watch       live dashboard over a streaming run
//!               [--quick] [--csv DIR] [--frames N]
//!   bench-diff  compare two criterion summary JSON files
//!               [--threshold PCT] [--strict] OLD NEW
//! ```

use nexuspp_bench::experiments::{self, Experiment};
use nexuspp_bench::{benchdiff, watch, ExpOptions};
use std::io::IsTerminal;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: repro <table2|table4|fig4|fig6|fig7|fig8|headline|nexus-vs|rts|ablate|video|shards|steal|capacity|wakes|frontend|observe|serve|incr|all> \
         [--full] [--quick] [--csv DIR]\n       \
         repro watch [--quick] [--csv DIR] [--frames N]\n       \
         repro bench-diff [--threshold PCT] [--strict] OLD.json NEW.json"
    );
    std::process::exit(2);
}

/// `repro bench-diff [--threshold PCT] [--strict] OLD NEW` — parse both
/// summaries, print the per-benchmark delta table, and (only under
/// `--strict`) exit nonzero when anything regressed past the threshold.
fn bench_diff(args: impl Iterator<Item = String>) -> ! {
    let mut threshold = 25.0f64;
    let mut strict = false;
    let mut paths: Vec<String> = Vec::new();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threshold" => {
                let pct = args.next().unwrap_or_else(|| usage());
                threshold = pct.parse().unwrap_or_else(|e| {
                    eprintln!("bad --threshold {pct:?}: {e}");
                    usage()
                });
            }
            "--strict" => strict = true,
            other if other.starts_with("--") => {
                eprintln!("unknown flag: {other}");
                usage();
            }
            path => paths.push(path.to_string()),
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        eprintln!("bench-diff needs exactly two summary files (old, new)");
        usage();
    };
    let load = |path: &str| -> Vec<benchdiff::BenchRecord> {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        benchdiff::parse_summary(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(2);
        })
    };
    let rows = benchdiff::diff(&load(old_path), &load(new_path), threshold);
    println!("old: {old_path}\nnew: {new_path}");
    println!("{}", benchdiff::render(&rows, threshold));
    if benchdiff::has_regressions(&rows) {
        if strict {
            eprintln!("[bench-diff] regressions past {threshold:.0}% (strict mode): failing");
            std::process::exit(1);
        }
        eprintln!(
            "[bench-diff] regressions past {threshold:.0}% (warn-only; pass --strict to fail)"
        );
    }
    std::process::exit(0);
}

/// `repro watch [--quick] [--csv DIR] [--frames N]` — drive a live run
/// and render the collector's dashboard until the frame budget runs
/// out. Repaints in place on a terminal; appends frames when piped.
fn watch_cmd(args: impl Iterator<Item = String>) -> ! {
    let mut opts = watch::WatchOptions {
        ansi: std::io::stdout().is_terminal(),
        ..watch::WatchOptions::default()
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => {
                opts = watch::WatchOptions {
                    ansi: opts.ansi,
                    csv_dir: opts.csv_dir.clone(),
                    ..watch::WatchOptions::quick()
                };
            }
            "--csv" => {
                let dir = args.next().unwrap_or_else(|| usage());
                opts.csv_dir = Some(dir.into());
            }
            "--frames" => {
                let n = args.next().unwrap_or_else(|| usage());
                opts.frames = n.parse().unwrap_or_else(|e| {
                    eprintln!("bad --frames {n:?}: {e}");
                    usage()
                });
            }
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    let mut stdout = std::io::stdout().lock();
    match watch::run_watch(&opts, &mut stdout) {
        Ok(summary) => {
            if summary.violations > 0 {
                eprintln!(
                    "[watch] {} lifecycle violations observed",
                    summary.violations
                );
                std::process::exit(1);
            }
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("[watch] io error: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(which) = args.next() else { usage() };
    match which.as_str() {
        "bench-diff" => bench_diff(args),
        "watch" => watch_cmd(args),
        _ => {}
    }
    let mut opts = ExpOptions::default();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--full" => opts.full = true,
            "--quick" => opts.quick = true,
            "--csv" => {
                let dir = args.next().unwrap_or_else(|| usage());
                opts.out_dir = Some(dir.into());
            }
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }

    let run = |exps: Vec<Experiment>, opts: &ExpOptions| {
        for e in exps {
            println!("{}", e.render());
            if let Some(dir) = &opts.out_dir {
                if let Err(err) = e.write_csv(dir) {
                    eprintln!("failed to write CSV for {}: {err}", e.id);
                }
            }
        }
    };

    let t0 = Instant::now();
    match which.as_str() {
        "table2" => run(vec![experiments::table2(&opts)], &opts),
        "table4" => run(vec![experiments::table4(&opts)], &opts),
        "fig4" => run(vec![experiments::fig4(&opts)], &opts),
        "fig6" => run(vec![experiments::fig6(&opts)], &opts),
        "fig7" => run(vec![experiments::fig7(&opts)], &opts),
        "fig8" => run(vec![experiments::fig8(&opts)], &opts),
        "headline" => run(vec![experiments::headline(&opts)], &opts),
        "nexus-vs" => run(vec![experiments::nexus_vs(&opts)], &opts),
        "rts" => run(vec![experiments::rts(&opts)], &opts),
        "ablate" => run(vec![experiments::ablate(&opts)], &opts),
        "video" => run(vec![experiments::video(&opts)], &opts),
        "shards" => run(vec![experiments::shards(&opts)], &opts),
        "steal" => run(vec![experiments::steal(&opts)], &opts),
        "capacity" => run(vec![experiments::capacity(&opts)], &opts),
        "wakes" => run(vec![experiments::wakes(&opts)], &opts),
        "frontend" => run(vec![experiments::frontend(&opts)], &opts),
        "observe" => run(vec![experiments::observe(&opts)], &opts),
        "serve" => run(vec![experiments::serve(&opts)], &opts),
        "incr" => run(vec![experiments::incr(&opts)], &opts),
        "all" => run(experiments::all(&opts), &opts),
        _ => usage(),
    }
    eprintln!("[repro] completed in {:.1}s", t0.elapsed().as_secs_f64());
}
