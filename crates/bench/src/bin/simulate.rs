//! `simulate` — run an `.ntr` trace through the Task Machine.
//!
//! ```text
//! simulate [--workers N] [--depth N] [--contention-free] [--no-prep]
//!          [--tp N] [--dt N] [--kick N] [--analytic] <FILE.ntr | ->
//! ```
//!
//! Prints the simulation report (makespan, per-block utilization, stalls,
//! structure peaks). With `--analytic`, also prints the closed-form
//! bottleneck prediction for comparison.

use nexuspp_taskmachine::analytic::predict_speedup;
use nexuspp_taskmachine::{simulate_trace, MachineConfig};
use nexuspp_trace::format::read_trace;

fn usage() -> ! {
    eprintln!(
        "usage: simulate [--workers N] [--depth N] [--contention-free] [--no-prep] \
         [--tp N] [--dt N] [--kick N] [--analytic] <FILE.ntr | ->"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = MachineConfig::with_workers(8);
    let mut path: Option<String> = None;
    let mut analytic = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let num = |it: &mut std::slice::Iter<String>| -> usize {
            it.next()
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| usage())
        };
        match a.as_str() {
            "--workers" => cfg.workers = num(&mut it),
            "--depth" => cfg.buffering_depth = num(&mut it),
            "--tp" => cfg.nexus.task_pool_entries = num(&mut it),
            "--dt" => cfg.nexus.dep_table_entries = num(&mut it),
            "--kick" => cfg.nexus.kickoff_entries = num(&mut it),
            "--contention-free" => cfg = cfg.contention_free(),
            "--no-prep" => cfg = cfg.no_prep(),
            "--analytic" => analytic = true,
            p if path.is_none() => path = Some(p.to_string()),
            _ => usage(),
        }
    }
    let path = path.unwrap_or_else(|| usage());
    let trace = if path == "-" {
        let stdin = std::io::stdin();
        let mut lock = stdin.lock();
        read_trace(&mut lock).expect("parse trace from stdin")
    } else {
        let f = std::fs::File::open(&path).expect("open trace file");
        let mut r = std::io::BufReader::new(f);
        read_trace(&mut r).expect("parse trace file")
    };
    // Re-sizing note: records index into the pool; validate is called by
    // the machine itself.
    eprintln!(
        "[simulate] {} tasks on {} workers (depth {})",
        trace.len(),
        cfg.workers,
        cfg.buffering_depth
    );
    let prediction = analytic.then(|| predict_speedup(&trace, &cfg));
    match simulate_trace(cfg, &trace) {
        Ok(r) => {
            println!("workload            {}", r.name);
            println!("tasks               {}", r.tasks);
            println!("makespan            {}", r.makespan);
            println!("throughput          {:.3} tasks/us", r.tasks_per_us());
            println!("worker utilization  {:.1}%", r.worker_utilization() * 100.0);
            println!(
                "master              busy {} | stalls {}",
                r.master_busy, r.master_stalls
            );
            for (name, b) in [
                ("WriteTP", &r.write_tp),
                ("CheckDeps", &r.check_deps),
                ("Schedule", &r.schedule),
                ("SendTDs", &r.send_tds),
                ("HandleFin", &r.handle_fin),
            ] {
                println!(
                    "{name:<19} ops {} | util {:>5.1}% | stalls {}",
                    b.ops,
                    b.utilization(r.makespan) * 100.0,
                    b.stalls
                );
            }
            println!(
                "task pool           peak {} / dummy TDs {}",
                r.pool.peak_occupancy, r.pool.dummy_tds_allocated
            );
            println!(
                "dep table           peak {} / max chain {} / dummy entries {} / max waiters {}",
                r.table.peak_occupancy,
                r.table.max_chain_len,
                r.table.ext_allocs,
                r.table.max_waiters_live
            );
            println!(
                "memory              queued {} / peak waiters {}",
                r.mem_queued, r.mem_peak_waiters
            );
            if let Some(p) = prediction {
                println!(
                    "analytic            bottleneck {} | predicted speedup {:.1}x",
                    p.bottleneck(),
                    p.speedup()
                );
            }
        }
        Err(e) => {
            eprintln!("[simulate] error: {e}");
            std::process::exit(1);
        }
    }
}
