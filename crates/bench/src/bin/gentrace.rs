//! `gentrace` — write any built-in workload as an `.ntr` trace file.
//!
//! ```text
//! gentrace <workload> [-o FILE] [--seed N]
//!
//! workloads:
//!   wavefront | horizontal | vertical | independent   (120×68 H.264 grid)
//!   gaussian:<n>                                      (n×n elimination)
//!   video:<frames>                                    (multi-frame H.264)
//!   random:<tasks>:<addrs>                            (seeded random)
//! ```
//!
//! Without `-o`, the trace goes to stdout, so it composes:
//! `gentrace gaussian:64 | simulate --workers 8 -`.

use nexuspp_trace::format::write_trace;
use nexuspp_trace::Trace;
use nexuspp_workloads::random::RandomSpec;
use nexuspp_workloads::{GaussianSpec, GridPattern, GridSpec, VideoSpec};
use std::io::Write;

fn usage() -> ! {
    eprintln!(
        "usage: gentrace <wavefront|horizontal|vertical|independent|gaussian:N|video:F|random:T:A> \
         [-o FILE] [--seed N]"
    );
    std::process::exit(2);
}

fn build(which: &str, seed: u64) -> Option<Trace> {
    let grid = GridSpec {
        seed,
        ..GridSpec::default()
    };
    let trace = match which {
        "wavefront" => grid.generate(GridPattern::Wavefront),
        "horizontal" => grid.generate(GridPattern::Horizontal),
        "vertical" => grid.generate(GridPattern::Vertical),
        "independent" => grid.generate(GridPattern::Independent),
        other => {
            let mut it = other.split(':');
            match (it.next(), it.next(), it.next()) {
                (Some("gaussian"), Some(n), None) => {
                    let n: u32 = n.parse().ok()?;
                    if n > 2000 {
                        eprintln!(
                            "refusing to materialize gaussian n={n} (>2M tasks); \
                             use the streaming API instead"
                        );
                        return None;
                    }
                    GaussianSpec::new(n).trace()
                }
                (Some("video"), Some(f), None) => {
                    let frames: u32 = f.parse().ok()?;
                    let mut v = VideoSpec::new(frames);
                    v.grid.seed = seed;
                    v.generate()
                }
                (Some("random"), Some(t), Some(a)) => RandomSpec {
                    n_tasks: t.parse().ok()?,
                    addr_space: a.parse().ok()?,
                    seed,
                    ..RandomSpec::default()
                }
                .generate(),
                _ => return None,
            }
        }
    };
    Some(trace)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = None;
    let mut out: Option<String> = None;
    let mut seed = GridSpec::default().seed;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" => out = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            w if which.is_none() => which = Some(w.to_string()),
            _ => usage(),
        }
    }
    let which = which.unwrap_or_else(|| usage());
    let trace = build(&which, seed).unwrap_or_else(|| usage());
    eprintln!(
        "[gentrace] {} tasks ({}), mean exec {}",
        trace.len(),
        trace.name,
        trace.stats().mean_exec()
    );
    match out {
        Some(path) => {
            let f = std::fs::File::create(&path).expect("create output file");
            let mut w = std::io::BufWriter::new(f);
            write_trace(&trace, &mut w).expect("write trace");
            w.flush().expect("flush");
            eprintln!("[gentrace] wrote {path}");
        }
        None => {
            let stdout = std::io::stdout();
            let mut w = std::io::BufWriter::new(stdout.lock());
            write_trace(&trace, &mut w).expect("write trace");
        }
    }
}
