//! # nexuspp-bench — experiment harness
//!
//! Library backing the `repro` binary: one module per table/figure of the
//! paper, each returning structured rows that the binary renders as text
//! tables and CSV. Integration tests call the same functions, so "the
//! experiment reproduces" is a tested property, not a claim.
//!
//! | Paper artifact | Module | Binary command |
//! |---|---|---|
//! | Table II (Gaussian sizes) | [`experiments::table2`] | `repro table2` |
//! | Table IV (parameters, ≤210 KB) | [`experiments::table4`] | `repro table4` |
//! | Figure 4 (dependency patterns) | [`experiments::fig4`] | `repro fig4` |
//! | Figure 6 (design space) | [`experiments::fig6`] | `repro fig6` |
//! | Figure 7 (pattern speedups) | [`experiments::fig7`] | `repro fig7` |
//! | Figure 8 (Gaussian speedups) | [`experiments::fig8`] | `repro fig8` |
//! | §V headline (54×/143×/221×) | [`experiments::headline`] | `repro headline` |
//! | §III-B efficiency vs Nexus | [`experiments::nexus_vs`] | `repro nexus-vs` |
//! | §I motivation (software RTS) | [`experiments::rts`] | `repro rts` |
//! | design ablations | [`experiments::ablate`] | `repro ablate` |
//! | shard scaling (extension) | [`experiments::shards`] | `repro shards` |
//! | ready scheduling (extension) | [`experiments::steal`] | `repro steal` |
//! | bounded shard capacity (extension) | [`experiments::capacity`] | `repro capacity` |
//! | wake delivery (extension) | [`experiments::wakes`] | `repro wakes` |

pub mod benchdiff;
pub mod experiments;
pub mod steal_driver;
pub mod table;
pub mod watch;

pub use experiments::ExpOptions;
