//! One function per table/figure of the paper.
//!
//! Each experiment returns an [`Experiment`] (title, rendered tables,
//! notes) so the `repro` binary, the integration tests, and EXPERIMENTS.md
//! generation all share one implementation. Paper values appear next to
//! measured values wherever the paper states them.

use crate::table::{f1, f2, TextTable};
use nexuspp_baseline::{classic::classic_check_trace, ClassicLimits};
use nexuspp_baseline::{ideal_makespan, simulate_software_rts, SoftwareRtsConfig};
use nexuspp_core::NexusConfig;
use nexuspp_desim::SimTime;
use nexuspp_hw::storage::{StorageBudget, StorageParams, TASK_SUPERSCALAR_BYTES};
use nexuspp_hw::{BusConfig, MemoryConfig};
use nexuspp_taskmachine::{simulate, simulate_trace, MachineConfig};
use nexuspp_trace::{Trace, TraceSource};
use nexuspp_workloads::analysis::parallelism_profile;
use nexuspp_workloads::{stress, GaussianSpec, GridPattern, GridSpec, VideoSpec};
use std::path::PathBuf;

/// Experiment options from the command line.
#[derive(Debug, Clone, Default)]
pub struct ExpOptions {
    /// Include the long-running configurations (Gaussian n = 3000/5000).
    pub full: bool,
    /// Shrink sweeps for smoke tests.
    pub quick: bool,
    /// Write CSV outputs here.
    pub out_dir: Option<PathBuf>,
}

/// A reproduced paper artifact.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Short id (`table2`, `fig7`, …).
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// Captioned tables.
    pub tables: Vec<(String, TextTable)>,
    /// Free-form notes (caveats, paper-vs-measured commentary).
    pub notes: Vec<String>,
}

impl Experiment {
    /// Render everything as text.
    pub fn render(&self) -> String {
        let mut out = format!("== {} — {} ==\n", self.id, self.title);
        for (caption, table) in &self.tables {
            out.push('\n');
            out.push_str(caption);
            out.push('\n');
            out.push_str(&table.render());
        }
        if !self.notes.is_empty() {
            out.push('\n');
            for n in &self.notes {
                out.push_str("note: ");
                out.push_str(n);
                out.push('\n');
            }
        }
        out
    }

    /// Write each table as `<id>_<k>.csv` under `dir`.
    pub fn write_csv(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for (k, (_, table)) in self.tables.iter().enumerate() {
            let path = dir.join(format!("{}_{k}.csv", self.id));
            std::fs::write(path, table.to_csv())?;
        }
        Ok(())
    }
}

fn grid_core_counts(opts: &ExpOptions) -> Vec<usize> {
    if opts.quick {
        vec![1, 4, 16, 64]
    } else {
        vec![1, 2, 4, 8, 16, 32, 64, 128, 256]
    }
}

// ---------------------------------------------------------------------
// Table II
// ---------------------------------------------------------------------

/// Table II: Gaussian elimination tasks for different matrix sizes.
pub fn table2(opts: &ExpOptions) -> Experiment {
    let paper: &[(u32, u64, f64)] = &[
        (250, 31_374, 167.0),
        (500, 125_249, 334.0),
        (1000, 500_499, 667.0),
        (3000, 4_501_499, 2012.0),
        (5000, 12_502_499, 3523.0),
    ];
    let mut t = TextTable::new(vec![
        "matrix dim",
        "# tasks (paper)",
        "# tasks (ours)",
        "avg FLOPs (paper)",
        "avg FLOPs (ours)",
        "avg time @2GFLOPS",
    ]);
    for &(n, tasks, avg) in paper {
        let spec = GaussianSpec::new(n);
        // For moderate n, verify the closed form by actually generating.
        let counted = if n <= 1000 || opts.full {
            let mut src = spec.source();
            let mut c = 0u64;
            while src.next_task().is_some() {
                c += 1;
            }
            c
        } else {
            spec.task_count()
        };
        assert_eq!(counted, spec.task_count(), "closed form vs generated");
        t.row(vec![
            n.to_string(),
            tasks.to_string(),
            counted.to_string(),
            f1(avg),
            f1(spec.avg_weight()),
            spec.avg_task_time().to_string(),
        ]);
    }
    Experiment {
        id: "table2",
        title: "Gaussian elimination tasks per matrix size".into(),
        tables: vec![("Table II".into(), t)],
        notes: vec![
            "task counts follow (n²+n−2)/2 exactly".into(),
            "average weights follow Formula 1; the paper's n=5000 entry (3523) is \
             inconsistent with its own formula (3332.7) — see EXPERIMENTS.md"
                .into(),
        ],
    }
}

// ---------------------------------------------------------------------
// Table IV
// ---------------------------------------------------------------------

/// Table IV: system parameters and the ≤210 KB storage claim.
pub fn table4(_opts: &ExpOptions) -> Experiment {
    let cfg = MachineConfig::default();
    let mut params = TextTable::new(vec!["system parameter", "value"]);
    params.row(vec!["Cores clock freq.".to_string(), "2.0 GHz".into()]);
    params.row(vec![
        "Nexus++ clock freq.".to_string(),
        format!("{} (500 MHz)", cfg.nexus_clock.period()),
    ]);
    params.row(vec![
        "On-chip access time".to_string(),
        cfg.sram.access.to_string(),
    ]);
    params.row(vec![
        "Off-chip access time".to_string(),
        format!(
            "{} / {} B chunk",
            cfg.memory.chunk_time, cfg.memory.chunk_bytes
        ),
    ]);
    params.row(vec![
        "Memory bandwidth".to_string(),
        format!("{:.2} GB/s", cfg.memory.peak_bandwidth_gbps()),
    ]);
    params.row(vec![
        "Memory banks / concurrent accessors".to_string(),
        format!("{}", cfg.memory.slots()),
    ]);
    params.row(vec![
        "Task Pool".to_string(),
        format!("{} TDs × 78 B", cfg.nexus.task_pool_entries),
    ]);
    params.row(vec![
        "Parameters per TD".to_string(),
        cfg.nexus.params_per_td.to_string(),
    ]);
    params.row(vec![
        "Dependence Table".to_string(),
        format!("{} entries × 28 B", cfg.nexus.dep_table_entries),
    ]);
    params.row(vec![
        "Kick-Off list size".to_string(),
        format!("{} task IDs", cfg.nexus.kickoff_entries),
    ]);
    params.row(vec![
        "Buffering depth".to_string(),
        cfg.buffering_depth.to_string(),
    ]);
    params.row(vec![
        "Task preparation".to_string(),
        cfg.master.prep_time.to_string(),
    ]);

    let budget = StorageBudget::compute(&StorageParams::default());
    let mut storage = TextTable::new(vec!["structure", "bytes", "KB"]);
    for (name, bytes) in budget.rows() {
        storage.row(vec![
            name.to_string(),
            bytes.to_string(),
            f2(bytes as f64 / 1024.0),
        ]);
    }
    storage.row(vec![
        "TOTAL".to_string(),
        budget.total().to_string(),
        f2(budget.total() as f64 / 1024.0),
    ]);

    let total_kb = budget.total() as f64 / 1024.0;
    Experiment {
        id: "table4",
        title: "System parameters and storage budget".into(),
        tables: vec![
            ("Table IV — parameters".into(), params),
            ("Storage budget".into(), storage),
        ],
        notes: vec![
            format!(
                "total {:.1} KB — paper claims ≤ 210 KB: {}",
                total_kb,
                if budget.total() <= 210 * 1024 {
                    "HOLDS"
                } else {
                    "VIOLATED"
                }
            ),
            format!(
                "Task Superscalar uses {} KB (≈{}× more)",
                TASK_SUPERSCALAR_BYTES / 1024,
                TASK_SUPERSCALAR_BYTES / budget.total().max(1)
            ),
        ],
    }
}

// ---------------------------------------------------------------------
// Figure 4
// ---------------------------------------------------------------------

/// Figure 4: dependency patterns and their available parallelism.
pub fn fig4(_opts: &ExpOptions) -> Experiment {
    let g = GridSpec::default();
    let mut t = TextTable::new(vec![
        "pattern",
        "tasks",
        "critical path",
        "max parallel",
        "avg parallel",
    ]);
    let mut ramp = TextTable::new(vec!["round", "ready tasks (wavefront)"]);
    for pat in GridPattern::all() {
        let tr = g.generate(pat);
        let p = parallelism_profile(&tr);
        t.row(vec![
            pat.name().to_string(),
            p.tasks.to_string(),
            p.critical_path().to_string(),
            p.max_parallelism().to_string(),
            f2(p.avg_parallelism()),
        ]);
        if pat == GridPattern::Wavefront {
            for (i, w) in p.widths.iter().enumerate() {
                ramp.row(vec![i.to_string(), w.to_string()]);
            }
        }
    }
    Experiment {
        id: "fig4",
        title: "Dependency patterns (120×68 blocks)".into(),
        tables: vec![
            ("Pattern structure".into(), t),
            ("Wavefront ramp profile (Fig 4a)".into(), ramp),
        ],
        notes: vec![
            "the wavefront ramp rises from 1 to its mid-execution peak and falls \
             back to 1 — the ramping effect the paper describes"
                .into(),
        ],
    }
}

// ---------------------------------------------------------------------
// Figure 6
// ---------------------------------------------------------------------

fn fig6_machine(workers: usize, tp: usize, dt: usize) -> MachineConfig {
    let mut cfg = MachineConfig::with_workers(workers).contention_free();
    cfg.nexus = NexusConfig {
        task_pool_entries: tp,
        dep_table_entries: dt,
        ..NexusConfig::default()
    };
    cfg
}

/// Figure 6: design-space exploration of Task Pool / Dependence Table
/// sizes (independent tasks, 256 cores, double buffering, contention-free
/// memory).
pub fn fig6(opts: &ExpOptions) -> Experiment {
    let workers = if opts.quick { 64 } else { 256 };
    let trace = GridSpec::default().generate(GridPattern::Independent);
    let base = simulate_trace(fig6_machine(1, 8192, 8192), &trace).expect("baseline run");

    let dt_sizes: &[usize] = if opts.quick {
        &[512, 2048, 8192]
    } else {
        &[256, 512, 1024, 2048, 4096, 8192]
    };
    let mut dt_table = TextTable::new(vec![
        "DT entries (TP=8K)",
        "speedup",
        "longest hash chain",
        "DT peak occupancy",
        "check stalls",
    ]);
    for &dt in dt_sizes {
        let r = simulate_trace(fig6_machine(workers, 8192, dt), &trace).expect("dt sweep");
        dt_table.row(vec![
            dt.to_string(),
            f2(base.makespan / r.makespan),
            r.table.max_chain_len.to_string(),
            r.table.peak_occupancy.to_string(),
            r.check_deps.stalls.to_string(),
        ]);
    }

    let tp_sizes: &[usize] = if opts.quick {
        &[128, 512, 2048]
    } else {
        &[128, 256, 512, 1024, 2048, 4096, 8192]
    };
    let mut tp_table = TextTable::new(vec![
        "TP entries (DT=8K)",
        "speedup",
        "TP peak occupancy",
        "master stalls",
    ]);
    for &tp in tp_sizes {
        let r = simulate_trace(fig6_machine(workers, tp, 8192), &trace).expect("tp sweep");
        tp_table.row(vec![
            tp.to_string(),
            f2(base.makespan / r.makespan),
            r.pool.peak_occupancy.to_string(),
            r.master_stalls.to_string(),
        ]);
    }

    Experiment {
        id: "fig6",
        title: format!(
            "Design space exploration ({workers} cores, contention-free, independent tasks)"
        ),
        tables: vec![
            ("Speedup & chains vs Dependence Table size".into(), dt_table),
            ("Speedup vs Task Pool size".into(), tp_table),
        ],
        notes: vec![
            "paper: speedup peaks (143×) from DT = 2K upward; chains ≈ halve from 2K → 4K"
                .into(),
            format!(
                "paper: TP = 512 suffices at 256 cores (double buffering ⇒ window {} = cores × depth)",
                workers * 2
            ),
        ],
    }
}

// ---------------------------------------------------------------------
// Figure 7
// ---------------------------------------------------------------------

/// Figure 7: speedup over worker count for the Figure 4 patterns
/// (memory contention on, double buffering).
pub fn fig7(opts: &ExpOptions) -> Experiment {
    let counts = grid_core_counts(opts);
    let mut t = TextTable::new(
        std::iter::once("cores".to_string())
            .chain(GridPattern::all().iter().map(|p| p.name().to_string()))
            .collect::<Vec<_>>(),
    );
    // Baselines per pattern.
    let mut results: Vec<Vec<f64>> = Vec::new();
    for pat in GridPattern::all() {
        let trace = GridSpec::default().generate(pat);
        let base = simulate_trace(MachineConfig::with_workers(1), &trace).expect("fig7 base");
        let mut col = Vec::new();
        for &w in &counts {
            let r = if w == 1 {
                base.clone()
            } else {
                simulate_trace(MachineConfig::with_workers(w), &trace).expect("fig7 point")
            };
            col.push(base.makespan / r.makespan);
        }
        results.push(col);
    }
    for (i, &w) in counts.iter().enumerate() {
        let mut row = vec![w.to_string()];
        for col in &results {
            row.push(f2(col[i]));
        }
        t.row(row);
    }
    Experiment {
        id: "fig7",
        title: "Speedup vs cores for the Figure 4 dependency patterns".into(),
        tables: vec![("Figure 7".into(), t)],
        notes: vec![
            "paper shape: horizontal (b) saturates around 8 cores; vertical (c) scales \
             to 64; the wavefront is capped by its ramp-limited parallelism; independent \
             tasks reach 54× at 64 cores then flatten under memory contention"
                .into(),
        ],
    }
}

// ---------------------------------------------------------------------
// Figure 8
// ---------------------------------------------------------------------

/// Figure 8: Gaussian elimination speedups per matrix size (memory
/// contention on, double buffering).
pub fn fig8(opts: &ExpOptions) -> Experiment {
    let sizes: Vec<u32> = if opts.quick {
        vec![250, 500]
    } else if opts.full {
        vec![250, 500, 1000, 3000, 5000]
    } else {
        vec![250, 500, 1000]
    };
    let counts: Vec<usize> = if opts.quick {
        vec![1, 4, 16, 64]
    } else {
        vec![1, 2, 4, 8, 16, 32, 64]
    };
    let mut t = TextTable::new(
        std::iter::once("cores".to_string())
            .chain(sizes.iter().map(|n| format!("n={n}")))
            .collect::<Vec<_>>(),
    );
    let mut cols: Vec<Vec<f64>> = Vec::new();
    for &n in &sizes {
        let spec = GaussianSpec::new(n);
        let mut src = spec.source();
        let base = simulate(MachineConfig::with_workers(1), &mut src).expect("fig8 base");
        let mut col = Vec::new();
        for &w in &counts {
            if w == 1 {
                col.push(1.0);
                continue;
            }
            let mut src = spec.source();
            let r = simulate(MachineConfig::with_workers(w), &mut src).expect("fig8 point");
            col.push(base.makespan / r.makespan);
        }
        cols.push(col);
    }
    for (i, &w) in counts.iter().enumerate() {
        let mut row = vec![w.to_string()];
        for col in &cols {
            row.push(f2(col[i]));
        }
        t.row(row);
    }

    // Companion variant: Gaussian memory traffic exempt from bank
    // contention. The paper's 45× at 64 cores is unreachable under the
    // literal model (W doubles read+written per task exceeds the 10.67
    // GB/s aggregate at that task rate); without contention our model
    // lands on the paper's number, so this is evidently what their
    // simulator measured. Both variants are reported.
    let biggest = *sizes.last().expect("nonempty");
    let spec = GaussianSpec::new(biggest);
    let mut src = spec.source();
    let base_cf =
        simulate(MachineConfig::with_workers(1).contention_free(), &mut src).expect("fig8 cf base");
    let mut cf = TextTable::new(vec![
        "cores",
        "contended speedup",
        "contention-free speedup",
    ]);
    for &w in counts.iter().filter(|&&w| w > 1) {
        let mut src = spec.source();
        let r_cf = simulate(MachineConfig::with_workers(w).contention_free(), &mut src)
            .expect("fig8 cf point");
        let contended =
            cols.last().expect("nonempty")[counts.iter().position(|&c| c == w).unwrap()];
        cf.row(vec![
            w.to_string(),
            f2(contended),
            f2(base_cf.makespan / r_cf.makespan),
        ]);
    }

    Experiment {
        id: "fig8",
        title: "Gaussian elimination speedup per matrix size".into(),
        tables: vec![
            ("Figure 8 (literal memory model, contention on)".into(), t),
            (format!("n={biggest}: memory-contention sensitivity"), cf),
        ],
        notes: vec![
            "paper: n=5000 reaches 45× at 64 cores; n=250 reaches 2.3× at 4 cores and \
             stays flat"
                .into(),
            "the paper's 45× is only consistent with Gaussian traffic NOT contending \
             for the 32 banks (literal W-doubles traffic exceeds the 10.67 GB/s \
             aggregate); the contention-free column reproduces it — see EXPERIMENTS.md"
                .into(),
            if opts.full {
                "full mode: includes n=3000 and n=5000 (12.5M tasks per run)".into()
            } else {
                "default mode: n ≤ 1000; pass --full for n = 3000/5000".into()
            },
        ],
    }
}

// ---------------------------------------------------------------------
// Headline numbers
// ---------------------------------------------------------------------

/// §V headline: 54× (64 cores, contention), 143× (256 cores,
/// contention-free), 221× (no task-prep delay).
pub fn headline(_opts: &ExpOptions) -> Experiment {
    let trace = GridSpec::default().generate(GridPattern::Independent);
    let base = simulate_trace(MachineConfig::with_workers(1), &trace).expect("headline base");
    let mk = |cfg: MachineConfig| -> f64 {
        let r = simulate_trace(cfg, &trace).expect("headline point");
        base.makespan / r.makespan
    };
    let s64 = mk(MachineConfig::with_workers(64));
    let s256cf = mk(MachineConfig::with_workers(256).contention_free());
    let s256np = mk(MachineConfig::with_workers(256).contention_free().no_prep());

    let mut t = TextTable::new(vec!["experiment", "paper", "ours", "ratio"]);
    t.row(vec![
        "64 cores, memory contention".to_string(),
        "54×".into(),
        format!("{:.1}×", s64),
        f2(s64 / 54.0),
    ]);
    t.row(vec![
        "256 cores, contention-free".to_string(),
        "143×".into(),
        format!("{:.1}×", s256cf),
        f2(s256cf / 143.0),
    ]);
    t.row(vec![
        "256 cores, contention-free, no prep delay".to_string(),
        "221×".into(),
        format!("{:.1}×", s256np),
        f2(s256np / 221.0),
    ]);
    Experiment {
        id: "headline",
        title: "Independent-tasks headline speedups (double buffering)".into(),
        tables: vec![("§V headline numbers".into(), t)],
        notes: vec![
            "same qualitative structure: contention caps the curve from ~64 cores; \
             removing the 30 ns task preparation lifts the master-limited plateau"
                .into(),
        ],
    }
}

// ---------------------------------------------------------------------
// Nexus classic comparison
// ---------------------------------------------------------------------

/// §I/§III-B: which workloads classic Nexus can run, and the lookup-count
/// comparison.
pub fn nexus_vs(opts: &ExpOptions) -> Experiment {
    let limits = ClassicLimits::default();
    let mut t = TextTable::new(vec![
        "workload",
        "classic Nexus",
        "max params",
        "max waiters",
        "classic lookups",
        "Nexus++ lookups",
        "ratio",
    ]);
    let mut cases: Vec<(String, Trace)> = vec![
        (
            "h264-wavefront".into(),
            GridSpec::default().generate(GridPattern::Wavefront),
        ),
        (
            "independent".into(),
            GridSpec::default().generate(GridPattern::Independent),
        ),
        (
            "gaussian-250".into(),
            GaussianSpec::new(if opts.quick { 80 } else { 250 }).trace(),
        ),
        ("wide-params-16".into(), stress::wide_params(64, 16, 1000)),
    ];
    for (name, trace) in cases.drain(..) {
        let v = classic_check_trace(&trace, limits, 1024, 2012);
        t.row(vec![
            name,
            if v.supported {
                "supported".to_string()
            } else {
                "REJECTED".to_string()
            },
            v.max_params_seen.to_string(),
            v.max_waiters_seen.to_string(),
            v.classic_accesses.to_string(),
            v.nexuspp_accesses.to_string(),
            f2(v.access_ratio()),
        ]);
    }
    Experiment {
        id: "nexus-vs",
        title: "Classic Nexus feasibility and lookup comparison".into(),
        tables: vec![("Nexus (2010) vs Nexus++".into(), t)],
        notes: vec![
            "paper: \"applications that could not be executed by Nexus, such as Gaussian \
             elimination …, can be executed efficiently on a multicore system with Nexus++\""
                .into(),
            "classic lookup model: three tables accessed for every parameter operation (§III-B)"
                .into(),
        ],
    }
}

// ---------------------------------------------------------------------
// Software RTS motivation
// ---------------------------------------------------------------------

/// §I motivation: the software runtime bottleneck vs Nexus++.
pub fn rts(opts: &ExpOptions) -> Experiment {
    let counts: Vec<usize> = if opts.quick {
        vec![1, 8, 32]
    } else {
        vec![1, 4, 8, 16, 32, 64]
    };
    let trace = GridSpec::default().generate(GridPattern::Independent);
    let cfg = SoftwareRtsConfig::default();
    let mem = MemoryConfig::default();

    let mut sw_mk = Vec::new();
    for &w in &counts {
        let mut src = trace.clone().into_source();
        sw_mk.push(simulate_software_rts(&mut src, w, &cfg, &mem));
    }
    let hw_base = simulate_trace(MachineConfig::with_workers(1), &trace).expect("rts base");
    let mut t = TextTable::new(vec![
        "cores",
        "software RTS speedup",
        "Nexus++ speedup",
        "ideal speedup",
    ]);
    for (i, &w) in counts.iter().enumerate() {
        let hw = if w == 1 {
            1.0
        } else {
            let r = simulate_trace(MachineConfig::with_workers(w), &trace).expect("rts hw");
            hw_base.makespan / r.makespan
        };
        let mut src = trace.clone().into_source();
        let ideal1 = ideal_makespan(&mut src, 1, &mem);
        let mut src = trace.clone().into_source();
        let ideal = ideal1 / ideal_makespan(&mut src, w, &mem);
        t.row(vec![
            w.to_string(),
            f2(sw_mk[0] / sw_mk[i]),
            f2(hw),
            f2(ideal),
        ]);
    }
    Experiment {
        id: "rts",
        title: "Software RTS bottleneck vs hardware task management".into(),
        tables: vec![("Motivating comparison (independent tasks)".into(), t)],
        notes: vec![
            "the software runtime serializes ~3 µs of management per task on the master \
             core and saturates in single digits; Nexus++ tracks the ideal curve until \
             memory contention"
                .into(),
        ],
    }
}

// ---------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------

/// Design ablations: buffering depth, shared bus, bus cost model,
/// kick-off list size.
pub fn ablate(opts: &ExpOptions) -> Experiment {
    let workers = if opts.quick { 16 } else { 64 };
    let wf = GridSpec::default().generate(GridPattern::Wavefront);
    let ind = GridSpec::default().generate(GridPattern::Independent);

    // Buffering depth: the paper's "double buffering" contribution.
    let mut depth_t = TextTable::new(vec![
        "buffering depth",
        "wavefront makespan",
        "independent makespan",
        "independent speedup vs depth 1",
    ]);
    let mut d1_ind = SimTime::ZERO;
    for depth in [1usize, 2, 4, 8] {
        let mut cfg = MachineConfig::with_workers(workers);
        cfg.buffering_depth = depth;
        let r_wf = simulate_trace(cfg.clone(), &wf).expect("depth wf");
        let r_ind = simulate_trace(cfg, &ind).expect("depth ind");
        if depth == 1 {
            d1_ind = r_ind.makespan;
        }
        depth_t.row(vec![
            depth.to_string(),
            r_wf.makespan.to_string(),
            r_ind.makespan.to_string(),
            f2(d1_ind / r_ind.makespan),
        ]);
    }

    // Bus model and sharing.
    let mut bus_t = TextTable::new(vec!["configuration", "independent speedup @256 cf"]);
    let base = simulate_trace(MachineConfig::with_workers(1), &ind).expect("bus base");
    for (name, mutate) in [
        (
            "prose bus (2 cyc/word), separate links",
            Box::new(|c: &mut MachineConfig| {
                c.bus = BusConfig::prose_model();
            }) as Box<dyn Fn(&mut MachineConfig)>,
        ),
        (
            "worked-example bus (6+n cyc), separate links",
            Box::new(|c: &mut MachineConfig| {
                c.bus = BusConfig::default();
            }),
        ),
        (
            "prose bus, shared master/TC bus",
            Box::new(|c: &mut MachineConfig| {
                c.bus = BusConfig::prose_model();
                c.shared_bus = true;
            }),
        ),
    ] {
        let mut cfg =
            MachineConfig::with_workers(if opts.quick { 64 } else { 256 }).contention_free();
        mutate(&mut cfg);
        let r = simulate_trace(cfg, &ind).expect("bus point");
        bus_t.row(vec![name.to_string(), f2(base.makespan / r.makespan)]);
    }

    // Kick-off list size on a fan-out-heavy workload.
    let gspec = GaussianSpec::new(if opts.quick { 120 } else { 500 });
    let mut kick_t = TextTable::new(vec![
        "kick-off list size",
        "gaussian makespan",
        "dummy entries allocated",
        "promotions",
    ]);
    for k in [2usize, 4, 8, 16, 32] {
        let mut cfg = MachineConfig::with_workers(workers);
        cfg.nexus.kickoff_entries = k;
        let mut src = gspec.source();
        let r = simulate(cfg, &mut src).expect("kick point");
        kick_t.row(vec![
            k.to_string(),
            r.makespan.to_string(),
            r.table.ext_allocs.to_string(),
            r.table.promotions.to_string(),
        ]);
    }

    Experiment {
        id: "ablate",
        title: format!("Design ablations ({workers} cores)"),
        tables: vec![
            (
                "Task-buffering depth (§III double buffering)".into(),
                depth_t,
            ),
            ("Bus model".into(), bus_t),
            ("Kick-off list size vs dummy-entry traffic".into(), kick_t),
        ],
        notes: vec![
            "depth 2 (double buffering) captures almost all of the benefit for \
             memory-heavy tasks; deeper buffering has diminishing returns"
                .into(),
            "smaller kick-off lists trade SRAM for dummy-entry traffic at identical \
             semantics — the mechanism's cost is visible, its correctness is not affected"
                .into(),
        ],
    }
}

// ---------------------------------------------------------------------
// Extension: multi-frame H.264 pipelining
// ---------------------------------------------------------------------

/// Extension experiment: multi-frame H.264 decode. P-frames reference the
/// previous frame, so wavefronts pipeline across frames and recover the
/// parallelism the single-frame ramp loses — the natural next step the
/// paper's single-frame trace points at.
pub fn video(opts: &ExpOptions) -> Experiment {
    let frames_list: &[u32] = if opts.quick { &[1, 2] } else { &[1, 2, 4, 8] };
    let cores = if opts.quick { 16 } else { 32 };
    let mut t = TextTable::new(vec![
        "frames",
        "tasks",
        "critical path",
        "avg parallelism",
        &format!("speedup @{cores} cores"),
        "speedup per frame-second",
    ]);
    for &f in frames_list {
        let spec = VideoSpec::new(f);
        let trace = spec.generate();
        let profile = parallelism_profile(&trace);
        let base = simulate_trace(MachineConfig::with_workers(1), &trace).expect("video base");
        let r = simulate_trace(MachineConfig::with_workers(cores), &trace).expect("video run");
        let speedup = base.makespan / r.makespan;
        t.row(vec![
            f.to_string(),
            trace.len().to_string(),
            profile.critical_path().to_string(),
            f2(profile.avg_parallelism()),
            f2(speedup),
            f2(speedup / f as f64),
        ]);
    }
    Experiment {
        id: "video",
        title: "Extension: multi-frame H.264 decode (P-frame pipelining)".into(),
        tables: vec![("Frames vs recovered parallelism".into(), t)],
        notes: vec![
            "with inter-frame references, frame f+1's wavefront starts as soon as its              reference blocks retire: the critical path grows by ~1 wavefront step per              frame instead of a whole frame, so average parallelism — and the achieved              speedup — climbs toward the steady-state bound as frames accumulate"
                .into(),
        ],
    }
}

// ---------------------------------------------------------------------
// Shard scaling (multi-Maestro extension)
// ---------------------------------------------------------------------

/// Shard-scaling study: the multi-Maestro model (S address-partitioned
/// Maestros behind a crossbar, batched submissions) over the balanced
/// stress stream, the pathological single-hot-shard stream, and the
/// Gaussian-elimination benchmark. Not a paper figure — this is the
/// scaled-out design the ROADMAP's north star asks for, measured.
pub fn shards(opts: &ExpOptions) -> Experiment {
    use nexuspp_taskmachine::{simulate_sharded, MultiMaestroConfig};
    use nexuspp_workloads::ShardedStressSpec;

    let n_stress: u32 = if opts.quick { 2_000 } else { 20_000 };
    let gauss_n: u32 = if opts.quick { 48 } else { 120 };
    let shard_counts: &[usize] = if opts.quick { &[1, 4] } else { &[1, 2, 4, 8] };

    // One stress stream (steered against STEER_SHARDS partitions) is
    // shared across the whole sweep so the rows stay comparable. That is
    // only sound while every swept count divides STEER_SHARDS: the router
    // is `(hash >> 32) % n`, so shard 0 of a divisor is a superset of
    // shard 0 of STEER_SHARDS and the hot-shard stream stays single-hot
    // at every swept size. Extending the sweep past that (16, or a
    // non-divisor like 3) requires steering a stream per shard count.
    const STEER_SHARDS: u32 = 8;
    for &s in shard_counts {
        assert_eq!(
            STEER_SHARDS as usize % s,
            0,
            "swept shard count {s} must divide the steering target {STEER_SHARDS}"
        );
    }
    let balanced = ShardedStressSpec {
        exec_ns: 0,
        ..ShardedStressSpec::balanced(n_stress, STEER_SHARDS)
    }
    .generate();
    let hot = ShardedStressSpec {
        exec_ns: 0,
        ..ShardedStressSpec::hot_shard(n_stress, STEER_SHARDS)
    }
    .generate();
    let gauss = GaussianSpec::new(gauss_n).trace();

    let cfg = |s: usize| MultiMaestroConfig {
        workers: 16,
        ..MultiMaestroConfig::with_shards(s).no_prep()
    };

    let mut table = TextTable::new(vec![
        "workload",
        "shards",
        "makespan µs",
        "Mtasks/s",
        "speedup",
        "imbalance",
        "peak queue",
    ]);
    let mut notes = Vec::new();
    for (name, trace) in [
        ("balanced", &balanced),
        ("hot-shard", &hot),
        ("gaussian", &gauss),
    ] {
        let mut base_tput = None;
        for &s in shard_counts {
            let r = simulate_sharded(cfg(s), trace);
            let tput = r.tasks_per_sec();
            let base = *base_tput.get_or_insert(tput);
            table.row(vec![
                name.to_string(),
                s.to_string(),
                f1(r.makespan.as_us_f64()),
                f2(tput / 1e6),
                format!("{}x", f2(tput / base)),
                f2(r.imbalance()),
                r.peak_shard_queue.to_string(),
            ]);
            if name == "balanced" && s == 4 && tput < 2.0 * base {
                notes.push(format!(
                    "REGRESSION: balanced 4-shard speedup {:.2}x below the 2x acceptance bar",
                    tput / base
                ));
            }
        }
    }
    notes.push(
        "balanced stream: address partitions spread evenly, shards scale until the crossbar \
         or workers saturate; hot-shard stream: all addresses hash to one shard, extra shards \
         idle (imbalance ≈ shard count)"
            .to_string(),
    );
    Experiment {
        id: "shards",
        title: format!(
            "Multi-Maestro shard scaling ({n_stress}-task streams, Gaussian n = {gauss_n})"
        ),
        tables: vec![("modeled resolution throughput by shard count".into(), table)],
        notes,
    }
}

// ---------------------------------------------------------------------
// Ready-task scheduling (work-stealing extension)
// ---------------------------------------------------------------------

/// Ready-scheduling study: mutex ready queue vs work-stealing deques on
/// the imbalanced `steal_stress` workload, at the scheduler layer (pure
/// scheduling overhead) and end-to-end through both runtime backends.
/// Not a paper figure — this measures the serialization point the
/// `nexuspp-sched` subsystem removes, the ROADMAP's "work-stealing ready
/// queues" item.
pub fn steal(opts: &ExpOptions) -> Experiment {
    use crate::steal_driver::{best_steal, Backend};
    use nexuspp_sched::stress::{best_of, ChainStressSpec};
    use nexuspp_sched::SchedulerKind;
    use nexuspp_workloads::StealStressSpec;

    let kinds = [SchedulerKind::MutexQueue, SchedulerKind::WorkStealing];
    let chain_len: u32 = if opts.quick { 800 } else { 4000 };
    let runs: u32 = if opts.quick { 2 } else { 3 };

    // Scheduler layer: tasks are a few atomic increments, so wall-clock
    // is the scheduling overhead itself.
    let mut sched_t = TextTable::new(vec![
        "scheduler",
        "workers",
        "tasks",
        "wall ms",
        "Mtasks/s",
        "vs mutex",
        "steals",
        "parks",
    ]);
    let mut ws_vs_mutex_at_4 = None;
    for &workers in &[1usize, 2, 4] {
        let spec = ChainStressSpec {
            workers,
            chains: 2 * workers.max(2) as u32,
            chain_len,
            spin_ns: 0,
        };
        let mut mutex_ms = None;
        for kind in kinds {
            let r = best_of(kind, &spec, runs);
            let ms = r.elapsed.as_secs_f64() * 1e3;
            let base = *mutex_ms.get_or_insert(ms);
            let speedup = base / ms;
            if workers == 4 && kind == SchedulerKind::WorkStealing {
                ws_vs_mutex_at_4 = Some(speedup);
            }
            sched_t.row(vec![
                kind.name().to_string(),
                workers.to_string(),
                spec.task_count().to_string(),
                f2(ms),
                f2(spec.task_count() as f64 / r.elapsed.as_secs_f64() / 1e6),
                format!("{}x", f2(speedup)),
                r.counts.steals.to_string(),
                r.counts.parks.to_string(),
            ]);
        }
    }

    // End to end: the same DAG through both execution backends (engine
    // resolution + region bookkeeping included), 4 workers.
    let rt_spec = StealStressSpec::for_workers(4, if opts.quick { 400 } else { 1500 });
    let mut rt_t = TextTable::new(vec![
        "backend",
        "scheduler",
        "tasks",
        "wall ms",
        "Mtasks/s",
        "vs mutex",
        "steals",
    ]);
    for backend in [Backend::Single, Backend::Sharded(4)] {
        let mut mutex_ms = None;
        for kind in kinds {
            let r = best_steal(backend, kind, 4, &rt_spec, runs);
            let ms = r.elapsed.as_secs_f64() * 1e3;
            let base = *mutex_ms.get_or_insert(ms);
            rt_t.row(vec![
                backend.name().to_string(),
                kind.name().to_string(),
                r.tasks.to_string(),
                f2(ms),
                f2(r.tasks_per_sec() / 1e6),
                format!("{}x", f2(base / ms)),
                r.counts.steals.to_string(),
            ]);
        }
    }

    let mut notes = vec![
        "scheduler layer: per task the mutex baseline pays a queue-lock round, a wake \
         token through a Mutex+Condvar channel, and another queue-lock round; work \
         stealing pays a handful of deque atomics on the owner path"
            .into(),
        "the >= 1.5x 4-worker bar is asserted deterministically in \
         nexuspp-sched tests/steal_perf.rs (best-of-3); rows here are 'best of N' \
         measurements of the same workload"
            .into(),
        "end-to-end rows include dependency resolution and region bookkeeping, which \
         are identical across schedulers, so ratios are smaller than the \
         scheduler-layer ones"
            .into(),
    ];
    if let Some(speedup) = ws_vs_mutex_at_4 {
        if speedup < 1.5 {
            notes.insert(
                0,
                format!(
                    "REGRESSION: scheduler-layer work stealing at 4 workers is only \
                     {speedup:.2}x the mutex queue (bar: 1.5x)"
                ),
            );
        }
    }
    Experiment {
        id: "steal",
        title: "Ready-task scheduling: mutex queue vs work stealing (steal_stress)".into(),
        tables: vec![
            ("Scheduler layer (pure scheduling overhead)".into(), sched_t),
            ("End to end through the runtimes (4 workers)".into(), rt_t),
        ],
        notes,
    }
}

// ---------------------------------------------------------------------
// Lock-free wake lists (kick-off delivery extension)
// ---------------------------------------------------------------------

/// Wake-delivery study: locked kick-off lists vs lock-free wake lists on
/// the wide fan-in wake-stress stream, plus the multi-Maestro model's
/// per-shard kick-off FIFO depths. Not a paper figure — this closes the
/// ROADMAP's "lock-free kick-off lists" item: finish-side wake delivery
/// posts outside the shard lock and is drained by a CAS-claimed owner,
/// so it performs zero shard-lock acquisitions (self-checked below) and
/// stops queueing behind resolution on the hot shard.
pub fn wakes(opts: &ExpOptions) -> Experiment {
    use nexuspp_shard::stress::{best_of, WakeStressSpec};
    use nexuspp_shard::WakeMode;
    use nexuspp_taskmachine::{simulate_sharded, MultiMaestroConfig};
    use nexuspp_workloads::WakeStressSpec as WakeTraceSpec;

    let modes = [WakeMode::Locked, WakeMode::LockFree];
    let runs: u32 = if opts.quick { 2 } else { 3 };
    let producers: u32 = if opts.quick { 64 } else { 256 };

    // Threaded dispatcher: 4 finisher workers hammer one hot shard's
    // wake path; the delivery-time ratio is the gated quantity.
    let mut disp_t = TextTable::new(vec![
        "wake mode",
        "burst",
        "tasks",
        "wakes",
        "wall ms",
        "delivery us",
        "vs locked",
        "lock acq",
    ]);
    let mut notes = Vec::new();
    for &consumers_per in &[4u32, 24] {
        let spec = WakeStressSpec {
            finishers: 4,
            producers,
            consumers_per,
            shards: 4,
            spin_ns: 0,
        };
        let mut locked_delivery = None;
        for mode in modes {
            let r = best_of(mode, &spec, runs);
            let delivery_us = r.wake_counts.delivery_ns as f64 / 1e3;
            let base = *locked_delivery.get_or_insert(delivery_us);
            if mode == WakeMode::LockFree && r.wake_counts.delivery_lock_acquisitions != 0 {
                notes.push(format!(
                    "REGRESSION: lock-free delivery took {} shard-lock acquisitions",
                    r.wake_counts.delivery_lock_acquisitions
                ));
            }
            if r.woken != spec.wake_count() {
                notes.push(format!(
                    "REGRESSION: {} mode delivered {} of {} wakes",
                    mode.name(),
                    r.woken,
                    spec.wake_count()
                ));
            }
            disp_t.row(vec![
                mode.name().to_string(),
                consumers_per.to_string(),
                r.completed.to_string(),
                r.woken.to_string(),
                f2(r.elapsed.as_secs_f64() * 1e3),
                f1(delivery_us),
                format!("{}x", f2(base / delivery_us)),
                r.wake_counts.delivery_lock_acquisitions.to_string(),
            ]);
        }
    }

    // Modeled: the multi-Maestro kick-off FIFOs under the same fan-in,
    // sweeping burst width — peak depth on the hot shard is the queueing
    // the lock-free lists absorb.
    let mut model_t = TextTable::new(vec![
        "burst",
        "tasks",
        "wakes delivered",
        "hot-shard peak depth",
        "makespan us",
        "tasks/s (modeled)",
    ]);
    for &consumers_per in &[4u32, 16, 64] {
        let spec = WakeTraceSpec::new(if opts.quick { 32 } else { 96 }, consumers_per);
        let trace = spec.generate();
        let r = simulate_sharded(
            MultiMaestroConfig {
                workers: 16,
                ..MultiMaestroConfig::with_shards(4).no_prep()
            },
            &trace,
        );
        let delivered: u64 = r.shard_wakes_delivered.iter().sum();
        if delivered == 0 || delivered > spec.wake_count() {
            notes.push(format!(
                "REGRESSION: model delivered {} kick-offs of at most {}",
                delivered,
                spec.wake_count()
            ));
        }
        model_t.row(vec![
            consumers_per.to_string(),
            r.tasks.to_string(),
            delivered.to_string(),
            r.shard_wake_peak.iter().max().unwrap().to_string(),
            f1(r.makespan.as_ns_f64() / 1e3),
            format!("{:.0}", r.tasks_per_sec()),
        ]);
    }

    notes.extend([
        "delivery time counts the drain-to-report step only (claim + hand-off); \
         resolution work under the shard lock is identical across modes, which is \
         why end-to-end wall-clock barely moves while delivery shrinks"
            .into(),
        "the >= 1.3x delivery bar at 4 workers (and the zero-lock-acquisition \
         invariant) is asserted deterministically in nexuspp-shard \
         tests/wake_perf.rs; rows here are 'best of N' measurements of the same \
         workload"
            .into(),
        "modeled rows: every consumer that parked at its check is delivered through \
         a kick-off FIFO exactly once (asserted inside the model); consumers the \
         master submitted after their producer already finished start ready and \
         bypass kick-off, so 'wakes delivered' can sit below the DAG's edge count"
            .into(),
    ]);
    Experiment {
        id: "wakes",
        title: "Wake delivery: locked kick-off lists vs lock-free wake lists (wake_stress)".into(),
        tables: vec![
            (
                "Threaded dispatcher (4 finisher workers, hot shard)".into(),
                disp_t,
            ),
            ("Multi-Maestro kick-off FIFOs (modeled)".into(), model_t),
        ],
        notes,
    }
}

// ---------------------------------------------------------------------
// Bounded shard capacity (finite-table extension)
// ---------------------------------------------------------------------

/// Capacity study: the bounded multi-Maestro fabric and the bounded
/// threaded runtime over the capacity-stress stream, sweeping the
/// per-shard residency bound C ∈ {1, 4, 16, ∞}. Not a paper figure —
/// this closes the "sharded capacity stalls in multi-Maestro mode"
/// fidelity gap: finite shard tables stall the master across the
/// crossbar exactly like the single-Maestro machine's Task-Pool stall,
/// and the stall/retry counters must balance at quiescence.
pub fn capacity(opts: &ExpOptions) -> Experiment {
    use nexuspp_core::ShardCapacity;
    use nexuspp_runtime::ShardedRuntime;
    use nexuspp_taskmachine::{simulate_sharded, MultiMaestroConfig};
    use nexuspp_workloads::CapacityStressSpec;

    let shards = 4usize;
    let spec = CapacityStressSpec {
        chain_len: if opts.quick { 24 } else { 96 },
        ..CapacityStressSpec::pressure(shards as u32)
    };
    let stress = spec.generate();
    let gauss = GaussianSpec::new(if opts.quick { 32 } else { 80 }).trace();
    let caps = [
        ShardCapacity::Bounded(1),
        ShardCapacity::Bounded(4),
        ShardCapacity::Bounded(16),
        ShardCapacity::Unbounded,
    ];

    let mut notes = Vec::new();
    let mut modeled = TextTable::new(vec![
        "workload",
        "capacity",
        "makespan µs",
        "Mtasks/s",
        "master stalls",
        "retries resolved",
        "peak queue",
    ]);
    for (name, trace) in [("capacity-stress", &stress), ("gaussian", &gauss)] {
        for cap in caps {
            let r = simulate_sharded(
                MultiMaestroConfig {
                    workers: 16,
                    ..MultiMaestroConfig::with_capacity(shards, cap).no_prep()
                },
                trace,
            );
            let resolved: u64 = r.shard_retries_resolved.iter().sum();
            modeled.row(vec![
                name.to_string(),
                cap.to_string(),
                f1(r.makespan.as_us_f64()),
                f2(r.tasks_per_sec() / 1e6),
                r.master_capacity_stalls.to_string(),
                resolved.to_string(),
                r.peak_shard_queue.to_string(),
            ]);
            if r.shard_stalls != r.shard_retries_resolved {
                notes.push(format!(
                    "REGRESSION: {name} at C={cap}: unresolved stall episodes \
                     ({:?} vs {:?})",
                    r.shard_stalls, r.shard_retries_resolved
                ));
            }
            if !cap.is_bounded() && r.master_capacity_stalls != 0 {
                notes.push(format!(
                    "REGRESSION: {name}: unbounded tables reported {} stalls",
                    r.master_capacity_stalls
                ));
            }
            if cap == ShardCapacity::Bounded(1) && r.master_capacity_stalls == 0 {
                notes.push(format!(
                    "REGRESSION: {name}: capacity 1 never stalled the master"
                ));
            }
        }
    }

    // The threaded runtime under the same bound: real parked submitter
    // threads, real finish-report wakeups, counter balance at quiescence.
    let mut threaded = TextTable::new(vec![
        "capacity",
        "wall ms",
        "submitter stalls",
        "retries resolved",
    ]);
    let (rt_chains, rt_chain_len) = (8u32, if opts.quick { 25u32 } else { 100 });
    for cap in caps {
        let rt = ShardedRuntime::with_capacity(4, shards, cap);
        let wall = nexuspp_runtime::stress::drive_capacity_stress(&rt, rt_chains, rt_chain_len);
        let ms = wall.as_secs_f64() * 1e3;
        let counts = rt.capacity_counts();
        let stalls: u64 = counts.iter().map(|c| c.stalls_observed).sum();
        let resolved: u64 = counts.iter().map(|c| c.retries_resolved).sum();
        threaded.row(vec![
            cap.to_string(),
            f2(ms),
            stalls.to_string(),
            resolved.to_string(),
        ]);
        if stalls != resolved {
            notes.push(format!(
                "REGRESSION: runtime at C={cap}: {stalls} stalls vs {resolved} resolved"
            ));
        }
    }

    notes.push(
        "the master parks on the first full shard and resumes when a finish phase \
         completes at the shards (cycle-accounted); episodes are counted once against \
         the first rejecting shard, so stalls == retries at quiescence is the \
         no-lost-wakeup invariant"
            .to_string(),
    );
    Experiment {
        id: "capacity",
        title: format!(
            "Bounded shard tables: stall/retry under capacity pressure ({shards} shards)"
        ),
        tables: vec![
            ("modeled multi-Maestro fabric".into(), modeled),
            ("threaded ShardedRuntime (4 workers)".into(), threaded),
        ],
        notes,
    }
}

// ---------------------------------------------------------------------
// Resource-versioning frontend (renaming extension)
// ---------------------------------------------------------------------

/// Frontend study: what version renaming buys over a raw encoding that
/// reuses one address per resource. Not a paper figure — this quantifies
/// the renaming extension: the same declarative program lowered twice
/// (renamed vs raw), contrasted structurally (DAG profile of the
/// rename-heavy `version_stress` stream) and measured (a strictly serial
/// version chain executed on the threaded sharded runtime, where raw
/// must run at width 1 and renamed saturates the workers).
pub fn frontend(opts: &ExpOptions) -> Experiment {
    use nexuspp_frontend::Lowering;
    use nexuspp_runtime::ShardedRuntime;
    use nexuspp_workloads::VersionStressSpec;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;
    use std::time::Instant;

    let lowerings = [Lowering::Renamed, Lowering::Raw];
    let mut notes = Vec::new();

    // Structural: the rename-heavy stream's DAG profile per lowering.
    let spec = if opts.quick {
        VersionStressSpec {
            chains: 8,
            chain_len: 8,
            cells: 6,
            steps: 3,
            exec_ns: 0,
        }
    } else {
        VersionStressSpec::renaming_heavy()
    };
    let mut dag_t = TextTable::new(vec![
        "lowering",
        "tasks",
        "true edges",
        "critical path",
        "avg parallelism",
        "peak",
        "avg vs raw",
    ]);
    let profiles: Vec<_> = lowerings
        .iter()
        .map(|&l| (l, spec.lowered(l), parallelism_profile(&spec.trace(l))))
        .collect();
    let raw_avg = profiles[1].2.avg_parallelism().max(f64::MIN_POSITIVE);
    for (lowering, lp, profile) in &profiles {
        dag_t.row(vec![
            lowering.name().to_string(),
            lp.tasks.len().to_string(),
            lp.edges.len().to_string(),
            profile.critical_path().to_string(),
            f1(profile.avg_parallelism()),
            profile.max_parallelism().to_string(),
            format!("{}x", f2(profile.avg_parallelism() / raw_avg)),
        ]);
    }
    let avgs = [
        profiles[0].2.avg_parallelism(),
        profiles[1].2.avg_parallelism(),
    ];
    if avgs[0] < 2.0 * avgs[1] {
        notes.push(format!(
            "REGRESSION: renamed avg parallelism {} is below 2x raw {}",
            f1(avgs[0]),
            f1(avgs[1])
        ));
    }

    // Measured: a single version chain (strictly serial raw, fully
    // parallel renamed) on real worker threads, peak width observed
    // across a per-task sleep.
    let chain_len = if opts.quick { 8 } else { 16 };
    let workers = 4usize;
    let mut run_t = TextTable::new(vec![
        "lowering",
        "chain len",
        "workers",
        "wall ms",
        "peak executed width",
    ]);
    for lowering in lowerings {
        let lp = VersionStressSpec::single_chain(chain_len).lowered(lowering);
        let rt = ShardedRuntime::new(workers, 2);
        let in_flight = Arc::new(AtomicU32::new(0));
        let peak = Arc::new(AtomicU32::new(0));
        let start = Instant::now();
        for sub in lp.tasks.iter().cloned() {
            let (in_flight, peak) = (Arc::clone(&in_flight), Arc::clone(&peak));
            rt.spawn_lowered(sub, move || {
                let now = in_flight.fetch_add(1, Ordering::AcqRel) + 1;
                peak.fetch_max(now, Ordering::AcqRel);
                std::thread::sleep(std::time::Duration::from_millis(2));
                in_flight.fetch_sub(1, Ordering::AcqRel);
            });
        }
        rt.barrier();
        let width = peak.load(Ordering::Acquire);
        match lowering {
            Lowering::Raw if width != 1 => notes.push(format!(
                "REGRESSION: raw chain overlapped (width {width}) — WAW order broken"
            )),
            Lowering::Renamed if width < 2 => notes.push(format!(
                "REGRESSION: renamed chain never overlapped (width {width})"
            )),
            _ => {}
        }
        run_t.row(vec![
            lowering.name().to_string(),
            chain_len.to_string(),
            workers.to_string(),
            f2(start.elapsed().as_secs_f64() * 1e3),
            width.to_string(),
        ]);
    }

    notes.extend([
        "both lowerings carry the identical task set and true-edge list; raw \
         additionally serializes every version of a resource through one address, \
         which is exactly the WAW/WAR false-dependence cost renaming deletes"
            .into(),
        "the >= 2x bars (structural and measured, raw width exactly 1) are \
         asserted deterministically in nexuspp-workloads (version_stress tests \
         and tests/version_parallelism.rs); rows here are the same contrast at \
         report sizes"
            .into(),
    ]);
    Experiment {
        id: "frontend",
        title: "Resource-versioning frontend: renamed vs raw lowering (version_stress)".into(),
        tables: vec![
            ("Structural: rename-heavy DAG profile".into(), dag_t),
            (
                "Measured: one version chain on the threaded runtime".into(),
                run_t,
            ),
        ],
        notes,
    }
}

// ---------------------------------------------------------------------
// Observability (extension)
// ---------------------------------------------------------------------

/// The observability extension, demonstrated end to end: run the
/// rename-heavy `version_stress` program (Renamed lowering) on the
/// sharded runtime with a lifecycle-event recorder attached, then
/// derive everything the tracing layer promises from the one drained
/// stream — a per-task latency breakdown, an events-vs-counters
/// differential against the runtime's atomic counters, and the
/// *observed* critical path (chains of waker edges), validated against
/// the *structural* critical path of the lowered DAG. With `--csv`, a
/// Chrome-trace JSON (`chrome://tracing` / Perfetto loadable) is
/// written next to the CSV tables; its JSON is validated either way.
pub fn observe(opts: &ExpOptions) -> Experiment {
    use nexuspp_frontend::Lowering;
    use nexuspp_obs::{
        chrome_trace, latency_breakdown, observed_critical_path, timelines, validate_json,
        EventKind, LatencyStats, Recorder,
    };
    use nexuspp_runtime::{ShardedRuntime, WakeMode};
    use nexuspp_sched::SchedulerKind;
    use nexuspp_workloads::VersionStressSpec;
    use std::sync::Arc;

    let spec = if opts.quick {
        VersionStressSpec {
            chains: 4,
            chain_len: 4,
            cells: 6,
            steps: 3,
            exec_ns: 0,
        }
    } else {
        VersionStressSpec {
            chains: 8,
            chain_len: 8,
            cells: 12,
            steps: 6,
            exec_ns: 0,
        }
    };
    let workers = 4usize;
    let mut notes = Vec::new();

    // Structural ground truth from the lowered DAG, before running
    // anything.
    let structural = parallelism_profile(&spec.trace(Lowering::Renamed)).critical_path();

    let rec = Arc::new(Recorder::new(workers));
    let rt = ShardedRuntime::with_recorder(
        workers,
        4,
        SchedulerKind::WorkStealing,
        nexuspp_core::ShardCapacity::Unbounded,
        WakeMode::LockFree,
        Arc::clone(&rec),
    );
    // A small per-task sleep keeps dependents parked until their
    // producers actually finish, so the wake (waker-edge) record is the
    // real dependence structure and not an artifact of fast retirement.
    for sub in spec.lowered(Lowering::Renamed).tasks {
        rt.spawn_lowered(sub, move || {
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
    }
    rt.barrier();
    let sched = rt.sched_counts();
    let wake = rt.wake_counts();
    let snap = rt.metrics().snapshot();
    let events = rec.drain();

    // Table 1: per-task latency breakdown.
    let tl = timelines(&events);
    let breakdown = latency_breakdown(&tl);
    let mut lat_t = TextTable::new(vec!["phase", "tasks", "mean us", "p50 us", "max us"]);
    let us = |ns: u64| f2(ns as f64 / 1e3);
    let mut lat_row = |phase: &str, s: &LatencyStats| {
        lat_t.row(vec![
            phase.to_string(),
            s.count.to_string(),
            f2(s.mean_ns / 1e3),
            us(s.p50_ns),
            us(s.max_ns),
        ]);
    };
    lat_row("submit -> ready", &breakdown.submit_to_ready);
    lat_row("ready -> exec start", &breakdown.ready_to_start);
    lat_row("exec start -> exec done", &breakdown.start_to_done);
    lat_row("exec done -> finished", &breakdown.done_to_finish);

    // Table 2: events vs counters — the same execution recorded twice,
    // independently; every row must agree at quiescence.
    let n = spec.task_count();
    let count = |k: EventKind| events.iter().filter(|e| e.kind == k).count() as u64;
    let mut diff_t = TextTable::new(vec!["quantity", "from events", "from counters"]);
    let mut diff_row = |name: &str, ev: u64, ctr: u64| {
        diff_t.row(vec![name.to_string(), ev.to_string(), ctr.to_string()]);
        if ev != ctr {
            notes.push(format!(
                "REGRESSION: {name} disagrees — {ev} from events vs {ctr} from counters"
            ));
        }
    };
    diff_row(
        "tasks submitted",
        count(EventKind::Submitted),
        snap.get("tasks", "submitted").unwrap_or(0),
    );
    diff_row("tasks finished", count(EventKind::Finished), n);
    diff_row(
        "wakes delivered",
        count(EventKind::WakeDelivered),
        wake.delivered,
    );
    diff_row("steals", count(EventKind::Stolen), sched.steals);
    diff_row(
        "events recorded",
        events.len() as u64,
        snap.get("events", "recorded").unwrap_or(0),
    );
    if rec.dropped() > 0 {
        notes.push(format!(
            "REGRESSION: {} events dropped (ring overflow)",
            rec.dropped()
        ));
    }

    // Table 3: observed vs structural critical path.
    let observed = observed_critical_path(&events);
    let mut cp_t = TextTable::new(vec!["critical path", "length (tasks)"]);
    cp_t.row(vec![
        "structural (lowered DAG)".into(),
        structural.to_string(),
    ]);
    cp_t.row(vec![
        "observed (waker edges)".into(),
        observed.length.to_string(),
    ]);
    if observed.length != structural {
        notes.push(format!(
            "REGRESSION: observed critical path {} != structural {structural}",
            observed.length
        ));
    }

    // The Chrome-trace export, validated always and written with --csv.
    let trace_json = chrome_trace(&events);
    if let Err(err) = validate_json(&trace_json) {
        notes.push(format!("REGRESSION: chrome trace is not valid JSON: {err}"));
    }
    if let Some(dir) = &opts.out_dir {
        let path = dir.join("observe_trace.json");
        match std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, &trace_json)) {
            Ok(()) => notes.push(format!("chrome trace written to {}", path.display())),
            Err(err) => notes.push(format!("failed to write chrome trace: {err}")),
        }
    }

    notes.extend([
        format!(
            "workload: version_stress (Renamed), {} tasks on {workers} workers \
             (sharded runtime, lock-free wakes), 1ms per-task sleep",
            n
        ),
        "the observed critical path follows Ready waker edges (which finisher \
         released each task); under renaming the chains collapse to depth 1 and \
         the stencil wavefront sets the depth, so observed must equal the \
         lowered DAG's longest chain"
            .into(),
        "latency phases: submit->ready is dependence wait, ready->start is \
         scheduling delay, start->done is execution, done->finished is \
         retirement (shard drain)"
            .into(),
    ]);
    Experiment {
        id: "observe",
        title: "Observability: lifecycle tracing, latency breakdown, critical path".into(),
        tables: vec![
            ("Per-task latency breakdown".into(), lat_t),
            ("Differential: events vs counters".into(), diff_t),
            ("Observed vs structural critical path".into(), cp_t),
        ],
        notes,
    }
}

/// The persistent resolver as a shared facility: a `ResolverService`
/// with deliberately tight per-tenant budgets under the service-stress
/// client streams, one client thread per tenant. Reports the full
/// admission funnel per tenant (submitted → backpressured/denied/
/// retried → admitted → executed) from the live metrics registry, then
/// drains with a graceful shutdown and cross-checks exactly-once
/// against a one-shot run of the identical programs on a bare runtime.
pub fn serve(opts: &ExpOptions) -> Experiment {
    use nexuspp_runtime::ShardedRuntime;
    use nexuspp_service::{ResolverService, ServiceConfig, ServiceTask, TenantId};
    use nexuspp_workloads::ServiceStressSpec;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Instant;

    let spec = if opts.quick {
        ServiceStressSpec::quick()
    } else {
        ServiceStressSpec::pressure()
    };
    // Budget below the stream's steady-state demand (≈ chains resident
    // chained tasks per tenant) so admission pressure is guaranteed;
    // a small lane keeps client-visible backpressure in play too.
    let budget = (spec.chains as u64 / 2).max(1);
    let lane = spec.chains.max(2) as usize;
    let workers = 4usize;
    let mut notes = Vec::new();

    let mut cfg = ServiceConfig::new(workers, 4).lane_capacity(lane);
    for t in 1..=spec.tenants {
        cfg = cfg.tenant(TenantId(t), budget);
    }
    let svc = ResolverService::start(cfg);
    let ran = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let clients: Vec<_> = spec
        .programs()
        .into_iter()
        .map(|(tenant, prog)| {
            let handle = svc.handle(tenant).expect("tenant registered");
            let ran = Arc::clone(&ran);
            std::thread::spawn(move || {
                let mut accepted = 0u64;
                for sub in prog {
                    let ran = Arc::clone(&ran);
                    let task = ServiceTask::new(sub, move || {
                        ran.fetch_add(1, Ordering::AcqRel);
                    });
                    if handle.submit_blocking(task).is_ok() {
                        accepted += 1;
                    }
                }
                accepted
            })
        })
        .collect();
    let accepted: u64 = clients.into_iter().map(|c| c.join().unwrap()).sum();
    let report = svc.shutdown();
    let wall = start.elapsed();
    let snap = svc.metrics_snapshot();

    let mut t = TextTable::new(vec![
        "tenant",
        "budget",
        "submitted",
        "backpressured",
        "budget denied",
        "capacity retries",
        "admitted",
        "executed",
        "peak in-flight",
    ]);
    let metric = |tenant: TenantId, name: &str| snap.get(&tenant.to_string(), name).unwrap_or(0);
    let mut executed_total = 0u64;
    for (tenant, counts) in &report.tenants {
        let executed = metric(*tenant, "executed");
        executed_total += executed;
        t.row(vec![
            tenant.to_string(),
            counts.cap.to_string(),
            metric(*tenant, "submitted").to_string(),
            metric(*tenant, "backpressured").to_string(),
            counts.denied.to_string(),
            metric(*tenant, "capacity_retries").to_string(),
            counts.admitted.to_string(),
            executed.to_string(),
            counts.peak.to_string(),
        ]);
        if counts.peak > counts.cap {
            notes.push(format!(
                "REGRESSION: {tenant} exceeded its budget (peak {} > cap {})",
                counts.peak, counts.cap
            ));
        }
    }

    // Differential: the identical programs, one-shot on a bare runtime
    // with no admission layer — both sides must execute every task.
    let oneshot_ran = Arc::new(AtomicU64::new(0));
    let rt = ShardedRuntime::new(workers, 4);
    for (_, prog) in spec.programs() {
        for sub in prog {
            let oneshot_ran = Arc::clone(&oneshot_ran);
            rt.spawn_lowered(sub, move || {
                oneshot_ran.fetch_add(1, Ordering::AcqRel);
            });
        }
    }
    rt.barrier();
    let oneshot = oneshot_ran.load(Ordering::Acquire);

    let mut sum_t = TextTable::new(vec!["measure", "value"]);
    sum_t.row(vec![
        "tasks per tenant".into(),
        spec.tasks_per_tenant().to_string(),
    ]);
    sum_t.row(vec!["accepted (client Ok)".into(), accepted.to_string()]);
    sum_t.row(vec![
        "executed (service)".into(),
        report.runtime.executed.to_string(),
    ]);
    sum_t.row(vec!["executed (one-shot)".into(), oneshot.to_string()]);
    sum_t.row(vec![
        "cancelled".into(),
        report.runtime.cancelled.to_string(),
    ]);
    sum_t.row(vec![
        "dropped in ingress".into(),
        report.dropped_ingress.to_string(),
    ]);
    sum_t.row(vec!["graceful".into(), report.graceful.to_string()]);
    sum_t.row(vec!["wall ms".into(), f1(wall.as_secs_f64() * 1e3)]);
    sum_t.row(vec![
        "throughput (tasks/ms)".into(),
        f1(accepted as f64 / (wall.as_secs_f64() * 1e3)),
    ]);

    if !report.graceful {
        notes.push("REGRESSION: graceful shutdown reported drops or a non-graceful quiesce".into());
    }
    if report.runtime.executed != accepted || ran.load(Ordering::Acquire) != accepted {
        notes.push(format!(
            "REGRESSION: exactly-once broken — accepted {accepted}, runtime executed {}, bodies ran {}",
            report.runtime.executed,
            ran.load(Ordering::Acquire)
        ));
    }
    if report.runtime.executed != executed_total {
        notes.push(format!(
            "REGRESSION: per-tenant executed counters sum to {executed_total}, runtime retired {}",
            report.runtime.executed
        ));
    }
    if report.runtime.executed != oneshot {
        notes.push(format!(
            "REGRESSION: service executed {} tasks but the one-shot run executed {oneshot}",
            report.runtime.executed
        ));
    }
    notes.push(format!(
        "{} tenants, budget {budget} (steady-state demand ≈ {} chained tasks), lane {lane}, \
         {workers} workers; clients spin on retryable backpressure via submit_blocking",
        spec.tenants, spec.chains
    ));
    notes.push(
        "the admission funnel is per tenant: lane-full → client backpressure, budget at cap → \
         held in ingress, shard table full → parked retry slot; none of these stall another \
         tenant's lane"
            .into(),
    );
    Experiment {
        id: "serve",
        title: "Resolver service: multi-tenant streaming ingress under admission pressure".into(),
        tables: vec![
            (
                "Per-tenant admission funnel (live metrics + final ledgers)".into(),
                t,
            ),
            ("Run summary and one-shot differential".into(), sum_t),
        ],
        notes,
    }
}

// ---------------------------------------------------------------------
// Incremental re-execution (extension)
// ---------------------------------------------------------------------

/// The incremental re-execution layer (`nexuspp-incr`) end to end: run
/// the 1000-task halo-exchange stencil from scratch, then apply edit
/// batches of increasing size and show what each one actually costs —
/// the dirty-cone table (per-scenario reran/reused split plus
/// Pearce–Kelly maintenance work), the cumulative reuse funnel pulled
/// from the *live* `MetricsRegistry` the program feeds, and the
/// measured from-scratch vs 1-edit wall-clock ratio against the ≥ 2×
/// acceptance bar.
pub fn incr(opts: &ExpOptions) -> Experiment {
    use nexuspp_frontend::Lowering;
    use nexuspp_incr::{Access, Backend, Edit, METRIC_NAMES};
    use nexuspp_obs::MetricsRegistry;
    use nexuspp_workloads::IncrStencilSpec;
    use std::time::Instant;

    let spec = if opts.quick {
        IncrStencilSpec {
            cells: 24,
            steps: 6,
        }
    } else {
        IncrStencilSpec::thousand()
    };
    let backend = Backend::Engine { shards: 4 };
    let lowering = Lowering::Renamed;
    let total = spec.task_count() as usize;
    let mut notes = Vec::new();

    let reg = MetricsRegistry::new();
    let mut ip = spec.build();
    ip.register_metrics(&reg, "incr");

    // The dirty-cone table: one rerun per scenario, live-timed. The
    // "retarget (same bindings)" row re-declares a task unchanged: the
    // cone is validated but every fingerprint matches, so early cutoff
    // re-runs nothing.
    let mid = spec.cells / 2;
    let same_accesses = vec![
        Access::ReadVersion(spec.cell(mid - 1), 0),
        Access::ReadVersion(spec.cell(mid), 0),
        Access::ReadVersion(spec.cell(mid + 1), 0),
        Access::Write(spec.cell(mid)),
    ];
    let scenarios: Vec<(&str, Vec<Edit>)> = vec![
        ("from scratch", vec![]),
        ("idle (no edit)", vec![]),
        ("1 edit", spec.touch_edits(1, 1)),
        ("10 edits", spec.touch_edits(10, 2)),
        (
            "retarget (same bindings)",
            vec![Edit::Retarget {
                key: spec.key(mid, 1),
                accesses: same_accesses,
            }],
        ),
    ];
    let mut t = TextTable::new(vec![
        "scenario",
        "tasks",
        "dirtied",
        "reran",
        "reused",
        "reuse %",
        "order ops",
        "wall ms",
    ]);
    let mut one_edit_reran = 0usize;
    for (name, edits) in scenarios {
        if !edits.is_empty() {
            ip.edit_batch(edits).expect("stencil edits stay acyclic");
        }
        let t0 = Instant::now();
        let rep = ip.rerun(lowering, &backend);
        let wall = t0.elapsed();
        if rep.reran + rep.reused != rep.total {
            notes.push(format!(
                "REGRESSION: {name}: reran {} + reused {} != total {}",
                rep.reran, rep.reused, rep.total
            ));
        }
        if name == "1 edit" {
            one_edit_reran = rep.reran;
        }
        if name == "retarget (same bindings)" && rep.reran != 0 {
            notes.push(format!(
                "REGRESSION: unchanged retarget re-ran {} tasks (early cutoff broken)",
                rep.reran
            ));
        }
        t.row(vec![
            name.to_string(),
            rep.total.to_string(),
            rep.dirtied.to_string(),
            rep.reran.to_string(),
            rep.reused.to_string(),
            f1(100.0 * rep.reused as f64 / rep.total.max(1) as f64),
            rep.order_maintenance_ops.to_string(),
            f2(wall.as_secs_f64() * 1e3),
        ]);
    }
    // Structural acceptance bar, clock-independent: one edit's cone
    // must leave at least half the program reusable.
    if one_edit_reran * 2 > total {
        notes.push(format!(
            "REGRESSION: 1-edit re-ran {one_edit_reran} of {total} tasks — \
             the structural 2x work reduction is gone"
        ));
    }

    // The cumulative reuse funnel, read back through the *registry*
    // (not the reports): this is the path an operator dashboard uses.
    let snap = reg.snapshot();
    let mut funnel = TextTable::new(vec!["counter", "cumulative"]);
    for name in METRIC_NAMES {
        funnel.row(vec![
            name.to_string(),
            snap.get("incr", name).unwrap_or(0).to_string(),
        ]);
    }
    let get = |n: &str| snap.get("incr", n).unwrap_or(0);
    if get("reran") + get("reused") != get("total") {
        notes.push(format!(
            "REGRESSION: live funnel disagrees — reran {} + reused {} != total {}",
            get("reran"),
            get("reused"),
            get("total")
        ));
    }
    if get("runs") != 5 {
        notes.push(format!(
            "REGRESSION: registry saw {} runs, expected 5",
            get("runs")
        ));
    }

    // Measured: best-of-3 from-scratch vs 1-edit wall clock. Debug
    // builds print the ratio but only release builds hold it to the
    // bar (debug timing is allocator noise).
    let rounds = if opts.quick { 2 } else { 3 };
    let (mut best_full, mut best_edit) = (f64::MAX, f64::MAX);
    for round in 0..rounds {
        ip.invalidate_all();
        let t0 = Instant::now();
        ip.rerun(lowering, &backend);
        best_full = best_full.min(t0.elapsed().as_secs_f64());
        ip.edit_batch(spec.touch_edits(1, 100 + round)).unwrap();
        let t1 = Instant::now();
        ip.rerun(lowering, &backend);
        best_edit = best_edit.min(t1.elapsed().as_secs_f64());
    }
    let ratio = best_full / best_edit.max(1e-9);
    let mut speed = TextTable::new(vec!["path", "best wall ms", "vs from-scratch"]);
    speed.row(vec![
        "from scratch".to_string(),
        f2(best_full * 1e3),
        "1.00x".to_string(),
    ]);
    speed.row(vec![
        "1-edit re-run".to_string(),
        f2(best_edit * 1e3),
        format!("{}x", f2(ratio)),
    ]);
    if ratio < 2.0 && !cfg!(debug_assertions) {
        notes.push(format!(
            "REGRESSION: 1-edit re-run only {}x faster than from-scratch (bar: 2x)",
            f2(ratio)
        ));
    }

    notes.push(format!(
        "{} cells x {} steps = {total} tasks; a single-cell edit dirties one \
         light-cone (~steps^2 tasks), which is why the reuse column stays high",
        spec.cells, spec.steps
    ));
    notes.push(
        "the exact reran == dirty-set equivalence (and contents equality against \
         from-scratch and an independent oracle) is proptested per edit in \
         crates/incr/tests/incr_differential.rs; the 2x wall-clock bar is asserted \
         in release by crates/workloads/tests/incr_speedup.rs"
            .into(),
    );
    Experiment {
        id: "incr",
        title: "Incremental re-execution: dirty cones, memo reuse, and edit cost".into(),
        tables: vec![
            ("Dirty-cone walk per edit scenario (live-timed)".into(), t),
            (
                "Cumulative reuse funnel (live MetricsRegistry)".into(),
                funnel,
            ),
            ("Measured from-scratch vs 1-edit wall clock".into(), speed),
        ],
        notes,
    }
}

/// Run every experiment.
pub fn all(opts: &ExpOptions) -> Vec<Experiment> {
    vec![
        table2(opts),
        table4(opts),
        fig4(opts),
        fig6(opts),
        fig7(opts),
        fig8(opts),
        headline(opts),
        nexus_vs(opts),
        rts(opts),
        ablate(opts),
        video(opts),
        shards(opts),
        steal(opts),
        capacity(opts),
        wakes(opts),
        frontend(opts),
        observe(opts),
        serve(opts),
        incr(opts),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExpOptions {
        ExpOptions {
            quick: true,
            ..Default::default()
        }
    }

    #[test]
    fn table2_rows_match_paper_counts() {
        let e = table2(&quick());
        let t = &e.tables[0].1;
        assert_eq!(t.len(), 5);
        assert_eq!(t.cell(0, 1), t.cell(0, 2), "ours must equal paper count");
    }

    #[test]
    fn table4_budget_holds() {
        let e = table4(&quick());
        assert!(e.notes[0].contains("HOLDS"));
    }

    #[test]
    fn fig4_wavefront_profile_shape() {
        let e = fig4(&quick());
        let t = &e.tables[0].1;
        // wavefront row: critical path 306, avg ≈ 26.67.
        assert_eq!(t.cell(1, 2), "306");
    }

    #[test]
    fn headline_within_band() {
        let e = headline(&quick());
        let t = &e.tables[0].1;
        for row in 0..3 {
            let ratio: f64 = t.cell(row, 3).parse().unwrap();
            assert!(
                (0.7..=1.4).contains(&ratio),
                "row {row} ratio {ratio} outside ±40% band"
            );
        }
    }

    #[test]
    fn steal_tables_have_expected_shape() {
        let e = steal(&quick());
        // Scheduler layer: 2 kinds × workers {1, 2, 4}.
        assert_eq!(e.tables[0].1.len(), 6);
        // End to end: 2 backends × 2 kinds.
        assert_eq!(e.tables[1].1.len(), 4);
        // Shape only: the 1.5x bar itself is asserted by the dedicated
        // nexuspp-sched perf test (full sizes, best-of-3, own process);
        // re-asserting it here on quick debug-mode sizes would only add
        // a second, noisier flake surface for the same property.
    }

    #[test]
    fn capacity_sweep_balances_stalls_and_stresses_tight_bounds() {
        let e = capacity(&quick());
        assert!(
            !e.notes.iter().any(|n| n.contains("REGRESSION")),
            "capacity accounting broke: {:?}",
            e.notes
        );
        // Modeled rows: 2 workloads × 4 capacities; threaded rows: 4.
        assert_eq!(e.tables[0].1.len(), 8);
        assert_eq!(e.tables[1].1.len(), 4);
    }

    #[test]
    fn wakes_sweep_is_self_consistent() {
        let e = wakes(&quick());
        assert!(
            !e.notes.iter().any(|n| n.contains("REGRESSION")),
            "wake delivery accounting broke: {:?}",
            e.notes
        );
        // Threaded rows: 2 modes × 2 burst widths; modeled rows: 3.
        assert_eq!(e.tables[0].1.len(), 4);
        assert_eq!(e.tables[1].1.len(), 3);
    }

    #[test]
    fn frontend_renaming_holds_its_bars() {
        let e = frontend(&quick());
        assert!(
            !e.notes.iter().any(|n| n.contains("REGRESSION")),
            "renaming contrast broke: {:?}",
            e.notes
        );
        // Structural and measured tables: one row per lowering.
        assert_eq!(e.tables[0].1.len(), 2);
        assert_eq!(e.tables[1].1.len(), 2);
    }

    #[test]
    fn shards_balanced_meets_acceptance_bar() {
        let e = shards(&quick());
        assert!(
            !e.notes.iter().any(|n| n.contains("REGRESSION")),
            "balanced 4-shard speedup fell below 2x: {:?}",
            e.notes
        );
        // Quick mode rows: (balanced, hot, gaussian) × (1, 4 shards).
        assert_eq!(e.tables[0].1.len(), 6);
    }

    #[test]
    fn incr_funnel_balances_and_cutoff_holds() {
        let e = incr(&quick());
        assert!(
            !e.notes.iter().any(|n| n.contains("REGRESSION")),
            "incremental re-execution invariants broke: {:?}",
            e.notes
        );
        // Dirty-cone scenarios; funnel counters; speedup rows.
        assert_eq!(e.tables[0].1.len(), 5);
        assert_eq!(e.tables[1].1.len(), 6);
        assert_eq!(e.tables[2].1.len(), 2);
    }

    #[test]
    fn observe_differential_and_critical_path_agree() {
        let e = observe(&quick());
        assert!(
            !e.notes.iter().any(|n| n.contains("REGRESSION")),
            "observability invariants broke: {:?}",
            e.notes
        );
        // Latency breakdown: four phases; differential: five quantities;
        // critical path: structural vs observed.
        assert_eq!(e.tables[0].1.len(), 4);
        assert_eq!(e.tables[1].1.len(), 5);
        assert_eq!(e.tables[2].1.len(), 2);
    }
}
