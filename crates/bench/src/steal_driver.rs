//! Executes the [`StealStressSpec`] workload on the threaded runtimes —
//! real closures, real regions, either execution backend, either
//! ready-task scheduler — and reports wall-clock plus scheduler
//! counters. Shared by `experiments::steal` and the `ready_scheduling`
//! criterion bench.

use nexuspp_runtime::{Runtime, SchedCounts, SchedulerKind, ShardedRuntime};
use nexuspp_sched::stress::spin_for;
use nexuspp_workloads::StealStressSpec;
use std::time::{Duration, Instant};

/// Which execution backend to drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// [`Runtime`]: one engine behind one lock.
    Single,
    /// [`ShardedRuntime`] over this many shards.
    Sharded(usize),
}

impl Backend {
    /// Short stable name (table rows, bench labels).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Single => "single-engine",
            Backend::Sharded(_) => "sharded",
        }
    }
}

/// Outcome of one runtime-level steal-stress run.
#[derive(Debug, Clone)]
pub struct StealRun {
    /// Wall-clock from first spawn to quiescence.
    pub elapsed: Duration,
    /// Tasks executed (root + every chain task).
    pub tasks: u64,
    /// Scheduler counters at quiescence.
    pub counts: SchedCounts,
}

impl StealRun {
    /// Executed tasks per second.
    pub fn tasks_per_sec(&self) -> f64 {
        self.tasks as f64 / self.elapsed.as_secs_f64()
    }
}

macro_rules! drive {
    ($rt:expr, $spec:expr) => {{
        let rt = $rt;
        let spec = $spec;
        let exec_ns = spec.exec_ns;
        let root = rt.region(vec![0u64]);
        let cells: Vec<_> = (0..spec.chains).map(|_| rt.region(vec![0u64])).collect();
        let t0 = Instant::now();
        {
            let root = root.clone();
            rt.task().output(&root).spawn(move |t| {
                spin_for(exec_ns);
                t.write(&root)[0] = 1;
            });
        }
        for cell in &cells {
            for i in 0..spec.chain_len {
                let cell2 = cell.clone();
                if i == 0 {
                    let root = root.clone();
                    rt.task().input(&root).inout(cell).spawn(move |t| {
                        spin_for(exec_ns);
                        t.write(&cell2)[0] += 1;
                    });
                } else {
                    rt.task().inout(cell).spawn(move |t| {
                        spin_for(exec_ns);
                        t.write(&cell2)[0] += 1;
                    });
                }
            }
        }
        rt.barrier();
        let elapsed = t0.elapsed();
        for cell in &cells {
            assert_eq!(
                rt.with_data(cell, |v| v[0]),
                spec.chain_len as u64,
                "a chain lost tasks"
            );
        }
        StealRun {
            elapsed,
            tasks: spec.task_count(),
            counts: rt.sched_counts(),
        }
    }};
}

/// Run the workload to completion and report. Panics if any chain lost a
/// task (the runtimes' correctness tests guard this; here it protects the
/// measurement).
pub fn run_steal(
    backend: Backend,
    kind: SchedulerKind,
    workers: usize,
    spec: &StealStressSpec,
) -> StealRun {
    match backend {
        Backend::Single => drive!(Runtime::with_scheduler(workers, kind), spec),
        Backend::Sharded(shards) => {
            drive!(ShardedRuntime::with_scheduler(workers, shards, kind), spec)
        }
    }
}

/// Best (minimum) wall-clock over `runs` repetitions.
pub fn best_steal(
    backend: Backend,
    kind: SchedulerKind,
    workers: usize,
    spec: &StealStressSpec,
    runs: u32,
) -> StealRun {
    let mut best: Option<StealRun> = None;
    for _ in 0..runs {
        let r = run_steal(backend, kind, workers, spec);
        if best.as_ref().is_none_or(|b| r.elapsed < b.elapsed) {
            best = Some(r);
        }
    }
    best.expect("runs >= 1")
}
