//! Minimal text-table and CSV rendering (no external dependencies).

/// A simple column-aligned table builder.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut width = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = width[i] - c.chars().count();
                // Right-align numbers, left-align first column.
                if i == 0 {
                    line.push_str(c);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(c);
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (RFC-4180-ish; quotes cells containing commas).
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Access a cell (row, col) for assertions in tests.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }
}

/// Format a float with a sensible precision for reports.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a float with one decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["longer", "123"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("longer"));
        assert_eq!(t.cell(1, 1), "123");
    }

    #[test]
    fn csv_escaping() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["x,y", "he said \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic]
    fn width_mismatch_panics() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }
}
