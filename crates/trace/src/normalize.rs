//! Parameter-list normalization and validation.
//!
//! The hardware model assumes each task names a data segment at most once
//! (the Dependence Table holds one state per (task, address) interaction; a
//! duplicate would double-count the readers counter or the kick-off entry).
//! Real StarSs code can legally pass the same block as both `input` and
//! `output`; a source-to-source compiler canonicalizes that to `inout`.
//! [`normalize_params`] performs that canonicalization, preserving first-
//! occurrence order; [`validate_task`] reports structural problems a
//! generator could produce.

use crate::types::{Param, TaskRecord};

/// Merge duplicate addresses in a parameter list into single entries with
/// the most conservative access mode. Order of first occurrence is kept;
/// sizes take the maximum. Quadratic in the list length, which is bounded
/// by the per-task parameter count (≤ a few thousand for Gaussian pivots).
pub fn normalize_params(params: &[Param]) -> Vec<Param> {
    let mut out: Vec<Param> = Vec::with_capacity(params.len());
    for p in params {
        if let Some(existing) = out.iter_mut().find(|q| q.addr == p.addr) {
            existing.mode = existing.mode.merge(p.mode);
            existing.size = existing.size.max(p.size);
        } else {
            out.push(*p);
        }
    }
    out
}

/// Problems detected in a task record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskIssue {
    /// The same address appears more than once in the parameter list.
    DuplicateAddress { addr: u64 },
    /// A parameter has zero size (legal, but usually a generator bug).
    ZeroSizeParam { addr: u64 },
}

/// Validate one task record, returning all issues found.
pub fn validate_task(task: &TaskRecord) -> Vec<TaskIssue> {
    let mut issues = Vec::new();
    for (i, p) in task.params.iter().enumerate() {
        if task.params[..i].iter().any(|q| q.addr == p.addr) {
            issues.push(TaskIssue::DuplicateAddress { addr: p.addr });
        }
        if p.size == 0 {
            issues.push(TaskIssue::ZeroSizeParam { addr: p.addr });
        }
    }
    issues
}

/// Normalize a whole task in place (params deduplicated/merged).
pub fn normalize_task(task: &mut TaskRecord) {
    if validate_task(task)
        .iter()
        .any(|i| matches!(i, TaskIssue::DuplicateAddress { .. }))
    {
        task.params = normalize_params(&task.params);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::AccessMode;
    use nexuspp_desim::SimTime;

    #[test]
    fn dedupes_and_merges_modes() {
        let params = vec![
            Param::input(0x10, 4),
            Param::output(0x20, 8),
            Param::output(0x10, 16), // dup of first → inout, size 16
        ];
        let n = normalize_params(&params);
        assert_eq!(n.len(), 2);
        assert_eq!(n[0].addr, 0x10);
        assert_eq!(n[0].mode, AccessMode::InOut);
        assert_eq!(n[0].size, 16);
        assert_eq!(n[1].addr, 0x20);
    }

    #[test]
    fn preserves_order_without_duplicates() {
        let params = vec![Param::input(3, 4), Param::input(1, 4), Param::input(2, 4)];
        assert_eq!(normalize_params(&params), params);
    }

    #[test]
    fn validation_finds_issues() {
        let t = TaskRecord::compute_only(
            0,
            vec![Param::input(5, 4), Param::input(5, 4), Param::output(6, 0)],
            SimTime::NS,
        );
        let issues = validate_task(&t);
        assert!(issues.contains(&TaskIssue::DuplicateAddress { addr: 5 }));
        assert!(issues.contains(&TaskIssue::ZeroSizeParam { addr: 6 }));
    }

    #[test]
    fn normalize_task_only_rewrites_when_needed() {
        let clean = TaskRecord::compute_only(0, vec![Param::input(1, 4)], SimTime::NS);
        let mut t = clean.clone();
        normalize_task(&mut t);
        assert_eq!(t, clean);

        let mut dup = TaskRecord::compute_only(
            0,
            vec![Param::input(1, 4), Param::output(1, 4)],
            SimTime::NS,
        );
        normalize_task(&mut dup);
        assert_eq!(dup.params.len(), 1);
        assert_eq!(dup.params[0].mode, AccessMode::InOut);
    }
}
