//! `.ntr` — a line-oriented text format for task traces.
//!
//! Stands in for the authors' Cell H.264 trace files. The format is
//! deliberately trivial to parse and diff:
//!
//! ```text
//! ntr 1 <name>
//! t <id> <fptr-hex> e<exec-ps> r<cost> w<cost>
//! p <addr-hex> <size> <in|out|inout>     # one line per parameter
//! ...
//! ```
//!
//! where `<cost>` is `-` (none), `t<ps>` (a measured time in picoseconds)
//! or `b<bytes>` (a data volume for the memory model).

use crate::trace::Trace;
use crate::types::{AccessMode, MemCost, Param, TaskRecord};
use nexuspp_desim::SimTime;
use std::io::{self, BufRead, Write};

/// Errors produced when reading an `.ntr` stream.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed content, with line number and description.
    Syntax { line: usize, msg: String },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Syntax { line, msg } => write!(f, "line {line}: {msg}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

fn write_cost(out: &mut impl Write, tag: char, c: MemCost) -> io::Result<()> {
    match c {
        MemCost::None => write!(out, " {tag}-"),
        MemCost::Time(t) => write!(out, " {tag}t{}", t.ps()),
        MemCost::Bytes(b) => write!(out, " {tag}b{b}"),
    }
}

/// Serialize a trace to a writer.
pub fn write_trace(trace: &Trace, out: &mut impl Write) -> io::Result<()> {
    writeln!(out, "ntr 1 {}", trace.name)?;
    for t in &trace.tasks {
        write!(out, "t {} {:x} e{}", t.id, t.fptr, t.exec.ps())?;
        write_cost(out, 'r', t.read)?;
        write_cost(out, 'w', t.write)?;
        writeln!(out)?;
        for p in &t.params {
            writeln!(out, "p {:x} {} {}", p.addr, p.size, p.mode)?;
        }
    }
    Ok(())
}

/// Serialize a trace to a string.
pub fn trace_to_string(trace: &Trace) -> String {
    let mut buf = Vec::new();
    write_trace(trace, &mut buf).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("ntr output is ASCII")
}

fn syntax(line: usize, msg: impl Into<String>) -> ParseError {
    ParseError::Syntax {
        line,
        msg: msg.into(),
    }
}

fn parse_cost(tok: &str, tag: char, line: usize) -> Result<MemCost, ParseError> {
    let body = tok
        .strip_prefix(tag)
        .ok_or_else(|| syntax(line, format!("expected {tag}-cost, got `{tok}`")))?;
    match body.as_bytes().first() {
        Some(b'-') => Ok(MemCost::None),
        Some(b't') => body[1..]
            .parse::<u64>()
            .map(|ps| MemCost::Time(SimTime::from_ps(ps)))
            .map_err(|e| syntax(line, format!("bad time: {e}"))),
        Some(b'b') => body[1..]
            .parse::<u64>()
            .map(MemCost::Bytes)
            .map_err(|e| syntax(line, format!("bad bytes: {e}"))),
        _ => Err(syntax(line, format!("bad cost token `{tok}`"))),
    }
}

/// Parse a trace from a buffered reader.
pub fn read_trace(input: &mut impl BufRead) -> Result<Trace, ParseError> {
    let mut lines = input.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| syntax(1, "empty input"))
        .and_then(|(i, r)| r.map(|s| (i, s)).map_err(ParseError::from))?;
    let mut hdr = header.splitn(3, ' ');
    if hdr.next() != Some("ntr") || hdr.next() != Some("1") {
        return Err(syntax(1, "expected `ntr 1 <name>` header"));
    }
    let name = hdr.next().unwrap_or("").to_string();

    let mut trace = Trace::new(name);
    for (idx, line) in lines {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut toks = line.split_whitespace();
        match toks.next() {
            Some("t") => {
                let id: u64 = toks
                    .next()
                    .ok_or_else(|| syntax(lineno, "missing id"))?
                    .parse()
                    .map_err(|e| syntax(lineno, format!("bad id: {e}")))?;
                let fptr = u64::from_str_radix(
                    toks.next().ok_or_else(|| syntax(lineno, "missing fptr"))?,
                    16,
                )
                .map_err(|e| syntax(lineno, format!("bad fptr: {e}")))?;
                let etok = toks.next().ok_or_else(|| syntax(lineno, "missing exec"))?;
                let exec = etok
                    .strip_prefix('e')
                    .ok_or_else(|| syntax(lineno, "exec must start with `e`"))?
                    .parse::<u64>()
                    .map(SimTime::from_ps)
                    .map_err(|e| syntax(lineno, format!("bad exec: {e}")))?;
                let read = parse_cost(
                    toks.next().ok_or_else(|| syntax(lineno, "missing read"))?,
                    'r',
                    lineno,
                )?;
                let write = parse_cost(
                    toks.next().ok_or_else(|| syntax(lineno, "missing write"))?,
                    'w',
                    lineno,
                )?;
                trace.tasks.push(TaskRecord {
                    id,
                    fptr,
                    params: Vec::new(),
                    exec,
                    read,
                    write,
                });
            }
            Some("p") => {
                let task = trace
                    .tasks
                    .last_mut()
                    .ok_or_else(|| syntax(lineno, "parameter before any task"))?;
                let addr = u64::from_str_radix(
                    toks.next().ok_or_else(|| syntax(lineno, "missing addr"))?,
                    16,
                )
                .map_err(|e| syntax(lineno, format!("bad addr: {e}")))?;
                let size: u32 = toks
                    .next()
                    .ok_or_else(|| syntax(lineno, "missing size"))?
                    .parse()
                    .map_err(|e| syntax(lineno, format!("bad size: {e}")))?;
                let mode =
                    AccessMode::parse(toks.next().ok_or_else(|| syntax(lineno, "missing mode"))?)
                        .ok_or_else(|| syntax(lineno, "bad access mode"))?;
                task.params.push(Param { addr, size, mode });
            }
            Some(other) => return Err(syntax(lineno, format!("unknown record `{other}`"))),
            None => {}
        }
    }
    Ok(trace)
}

/// Parse a trace from a string.
pub fn trace_from_str(s: &str) -> Result<Trace, ParseError> {
    read_trace(&mut s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::from_tasks(
            "h264 demo",
            vec![
                TaskRecord {
                    id: 0,
                    fptr: 0xABCD,
                    params: vec![
                        Param::input(0x1A, 1024),
                        Param::input(0x2A, 1024),
                        Param::inout(0x3A, 1024),
                    ],
                    exec: SimTime::from_us(11),
                    read: MemCost::Time(SimTime::from_us(5)),
                    write: MemCost::Time(SimTime::from_us(2)),
                },
                TaskRecord {
                    id: 1,
                    fptr: 0xDCBA,
                    params: vec![Param::output(0x4A, 8)],
                    exec: SimTime::from_ns(500),
                    read: MemCost::None,
                    write: MemCost::Bytes(4096),
                },
            ],
        )
    }

    #[test]
    fn roundtrip() {
        let tr = sample();
        let text = trace_to_string(&tr);
        let back = trace_from_str(&text).unwrap();
        assert_eq!(tr, back);
    }

    #[test]
    fn format_is_stable() {
        let text = trace_to_string(&sample());
        let first_lines: Vec<_> = text.lines().take(3).collect();
        assert_eq!(first_lines[0], "ntr 1 h264 demo");
        assert_eq!(first_lines[1], "t 0 abcd e11000000 rt5000000 wt2000000");
        assert_eq!(first_lines[2], "p 1a 1024 in");
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "ntr 1 x\n\n# comment\nt 3 ff e100 r- wb64\np a 4 inout\n";
        let tr = trace_from_str(text).unwrap();
        assert_eq!(tr.tasks.len(), 1);
        assert_eq!(tr.tasks[0].id, 3);
        assert_eq!(tr.tasks[0].write, MemCost::Bytes(64));
        assert_eq!(tr.tasks[0].params[0].mode, AccessMode::InOut);
    }

    #[test]
    fn error_cases() {
        assert!(trace_from_str("").is_err());
        assert!(trace_from_str("bogus\n").is_err());
        assert!(
            trace_from_str("ntr 1 x\np 1 4 in\n").is_err(),
            "param before task"
        );
        assert!(trace_from_str("ntr 1 x\nt 0 zz e1 r- w-\n").is_err());
        assert!(trace_from_str("ntr 1 x\nt 0 1 e1 r- wq9\n").is_err());
        assert!(trace_from_str("ntr 1 x\nt 0 1 e1 r- w-\np 1 4 rw\n").is_err());
    }

    #[test]
    fn file_roundtrip() {
        let tr = sample();
        let dir = std::env::temp_dir().join("nexuspp-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.ntr");
        let mut f = std::io::BufWriter::new(std::fs::File::create(&path).unwrap());
        write_trace(&tr, &mut f).unwrap();
        drop(f);
        let mut r = std::io::BufReader::new(std::fs::File::open(&path).unwrap());
        let back = read_trace(&mut r).unwrap();
        assert_eq!(tr, back);
    }
}
