//! In-memory traces and streaming trace sources.

use crate::types::{MemCost, TaskRecord};
use nexuspp_desim::SimTime;

/// A stream of tasks in submission order.
///
/// The Task Machine pulls tasks one at a time — the Master Core "executes
/// the main program" and generates descriptors serially — so the simulator
/// never needs the whole workload in memory. Small benchmarks use
/// [`VecSource`]; the Gaussian generator implements `TraceSource` directly
/// and synthesizes tasks on demand (n = 5000 would otherwise materialize
/// 12.5 M records).
pub trait TraceSource {
    /// The next task in submission order, or `None` when the program ends.
    fn next_task(&mut self) -> Option<TaskRecord>;

    /// Total number of tasks, if known (used for progress and for
    /// preallocating reports).
    fn len_hint(&self) -> Option<u64> {
        None
    }
}

/// A `TraceSource` draining an owned vector of records.
#[derive(Debug, Clone)]
pub struct VecSource {
    tasks: std::vec::IntoIter<TaskRecord>,
    total: u64,
}

impl VecSource {
    /// Wrap a vector of tasks.
    pub fn new(tasks: Vec<TaskRecord>) -> Self {
        let total = tasks.len() as u64;
        VecSource {
            tasks: tasks.into_iter(),
            total,
        }
    }
}

impl TraceSource for VecSource {
    fn next_task(&mut self) -> Option<TaskRecord> {
        self.tasks.next()
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.total)
    }
}

/// An in-memory trace: an ordered list of task records plus a label.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Trace label (benchmark name, parameters).
    pub name: String,
    /// Tasks in submission order.
    pub tasks: Vec<TaskRecord>,
}

impl Trace {
    /// An empty trace.
    pub fn new(name: impl Into<String>) -> Self {
        Trace {
            name: name.into(),
            tasks: Vec::new(),
        }
    }

    /// Build from parts.
    pub fn from_tasks(name: impl Into<String>, tasks: Vec<TaskRecord>) -> Self {
        Trace {
            name: name.into(),
            tasks,
        }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True if no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Consume into a streaming source.
    pub fn into_source(self) -> VecSource {
        VecSource::new(self.tasks)
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> TraceStats {
        let mut s = TraceStats::default();
        for t in &self.tasks {
            s.tasks += 1;
            s.total_exec += t.exec;
            s.total_params += t.params.len() as u64;
            s.max_params = s.max_params.max(t.params.len() as u64);
            for (cost, time_total, byte_total) in [
                (t.read, &mut s.total_read_time, &mut s.total_read_bytes),
                (t.write, &mut s.total_write_time, &mut s.total_write_bytes),
            ] {
                match cost {
                    MemCost::None => {}
                    MemCost::Time(d) => *time_total += d,
                    MemCost::Bytes(b) => *byte_total += b,
                }
            }
        }
        s
    }
}

/// Aggregate statistics over a trace, used to validate the synthetic
/// workloads against the published trace properties (e.g. "On average a
/// task spends 7.5 µs for accessing off-chip memory and 11.8 µs for
/// execution").
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceStats {
    /// Number of tasks.
    pub tasks: u64,
    /// Sum of execution times.
    pub total_exec: SimTime,
    /// Sum of trace-recorded read times.
    pub total_read_time: SimTime,
    /// Sum of trace-recorded write times.
    pub total_write_time: SimTime,
    /// Sum of size-specified read volumes.
    pub total_read_bytes: u64,
    /// Sum of size-specified write volumes.
    pub total_write_bytes: u64,
    /// Sum of parameter-list lengths.
    pub total_params: u64,
    /// Longest parameter list.
    pub max_params: u64,
}

impl TraceStats {
    /// Mean execution time per task.
    pub fn mean_exec(&self) -> SimTime {
        if self.tasks == 0 {
            SimTime::ZERO
        } else {
            self.total_exec / self.tasks
        }
    }

    /// Mean trace-recorded memory time (read + write) per task.
    pub fn mean_mem_time(&self) -> SimTime {
        if self.tasks == 0 {
            SimTime::ZERO
        } else {
            (self.total_read_time + self.total_write_time) / self.tasks
        }
    }

    /// Mean parameters per task.
    pub fn mean_params(&self) -> f64 {
        if self.tasks == 0 {
            0.0
        } else {
            self.total_params as f64 / self.tasks as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Param;

    fn mk(id: u64, exec_ns: u64) -> TaskRecord {
        TaskRecord {
            id,
            fptr: 1,
            params: vec![Param::input(id * 16, 4), Param::output(id * 16 + 8, 4)],
            exec: SimTime::from_ns(exec_ns),
            read: MemCost::Time(SimTime::from_ns(10)),
            write: MemCost::Bytes(256),
        }
    }

    #[test]
    fn vec_source_drains_in_order() {
        let mut src = VecSource::new(vec![mk(0, 1), mk(1, 2), mk(2, 3)]);
        assert_eq!(src.len_hint(), Some(3));
        assert_eq!(src.next_task().unwrap().id, 0);
        assert_eq!(src.next_task().unwrap().id, 1);
        assert_eq!(src.next_task().unwrap().id, 2);
        assert!(src.next_task().is_none());
    }

    #[test]
    fn stats_aggregation() {
        let tr = Trace::from_tasks("t", vec![mk(0, 100), mk(1, 300)]);
        let s = tr.stats();
        assert_eq!(s.tasks, 2);
        assert_eq!(s.mean_exec(), SimTime::from_ns(200));
        assert_eq!(s.total_read_time, SimTime::from_ns(20));
        assert_eq!(s.total_write_bytes, 512);
        assert_eq!(s.total_params, 4);
        assert_eq!(s.max_params, 2);
        assert!((s.mean_params() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_stats() {
        let s = Trace::new("e").stats();
        assert_eq!(s.mean_exec(), SimTime::ZERO);
        assert_eq!(s.mean_mem_time(), SimTime::ZERO);
        assert_eq!(s.mean_params(), 0.0);
    }

    #[test]
    fn into_source_preserves_order_and_len() {
        let tr = Trace::from_tasks("t", (0..10).map(|i| mk(i, 1)).collect());
        let mut src = tr.into_source();
        let mut last = None;
        while let Some(t) = src.next_task() {
            if let Some(prev) = last {
                assert!(t.id > prev);
            }
            last = Some(t.id);
        }
        assert_eq!(last, Some(9));
    }
}
