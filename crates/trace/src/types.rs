//! Task descriptor building blocks.

use nexuspp_desim::SimTime;
use std::fmt;

/// How a task accesses one of its parameters. Mirrors the StarSs pragma
/// clauses `input`, `output` and `inout`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// Read-only (`input(...)`).
    In,
    /// Write-only (`output(...)`).
    Out,
    /// Read-write (`inout(...)`).
    InOut,
}

impl AccessMode {
    /// Does this access read the data?
    #[inline]
    pub fn reads(self) -> bool {
        matches!(self, AccessMode::In | AccessMode::InOut)
    }

    /// Does this access write the data? This is what the Dependence Table's
    /// `isOut` flag tracks — `inout` counts as a write for hazard purposes.
    #[inline]
    pub fn writes(self) -> bool {
        matches!(self, AccessMode::Out | AccessMode::InOut)
    }

    /// Is this the read-only mode? (The dependency-resolution pseudocode of
    /// Listing 2 branches on "newTask read-only A".)
    #[inline]
    pub fn is_read_only(self) -> bool {
        matches!(self, AccessMode::In)
    }

    /// Combine two accesses by the same task to the same address into the
    /// most conservative single mode.
    pub fn merge(self, other: AccessMode) -> AccessMode {
        if self == other {
            self
        } else {
            AccessMode::InOut
        }
    }

    /// Short lowercase name used by the `.ntr` format.
    pub fn as_str(self) -> &'static str {
        match self {
            AccessMode::In => "in",
            AccessMode::Out => "out",
            AccessMode::InOut => "inout",
        }
    }

    /// Parse an `.ntr` access-mode token.
    pub fn parse(s: &str) -> Option<AccessMode> {
        match s {
            "in" => Some(AccessMode::In),
            "out" => Some(AccessMode::Out),
            "inout" => Some(AccessMode::InOut),
            _ => None,
        }
    }
}

impl fmt::Display for AccessMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One task parameter: "An input/output of a task is stored in the format:
/// (base memory address, size, and access mode)". Dependencies are decided
/// "by comparing the base addresses of the inputs/outputs of the different
/// tasks" — sizes are carried but never used for overlap analysis, exactly
/// as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Param {
    /// Base memory address of the data segment.
    pub addr: u64,
    /// Segment size in bytes.
    pub size: u32,
    /// Access mode.
    pub mode: AccessMode,
}

impl Param {
    /// Convenience constructor.
    pub fn new(addr: u64, size: u32, mode: AccessMode) -> Self {
        Param { addr, size, mode }
    }

    /// A read-only parameter.
    pub fn input(addr: u64, size: u32) -> Self {
        Param::new(addr, size, AccessMode::In)
    }

    /// A write-only parameter.
    pub fn output(addr: u64, size: u32) -> Self {
        Param::new(addr, size, AccessMode::Out)
    }

    /// A read-write parameter.
    pub fn inout(addr: u64, size: u32) -> Self {
        Param::new(addr, size, AccessMode::InOut)
    }
}

/// Memory cost of a task's input fetch or output write-back.
///
/// The H.264 trace records measured times ("the time they have spent
/// reading/writing their inputs/outputs from/to memory"); the Gaussian
/// benchmark instead specifies data volumes ("each task also reads W
/// floating point numbers from memory, and writes the same number back")
/// that the memory model converts to time. Both appear in traces, so the
/// cost is a small sum type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemCost {
    /// No memory traffic for this phase.
    None,
    /// A measured duration (trace-recorded).
    Time(SimTime),
    /// A byte volume to be timed by the memory model
    /// (`ceil(bytes/128) × 12 ns` with the paper's parameters).
    Bytes(u64),
}

impl MemCost {
    /// True if this phase moves no data.
    pub fn is_none(self) -> bool {
        matches!(self, MemCost::None)
    }
}

/// One task in a trace: the unit the Master Core turns into a Task
/// Descriptor and submits to the Task Maestro.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskRecord {
    /// Serial number in generation order (the paper generates tasks "in
    /// serial execution order").
    pub id: u64,
    /// Function pointer / task-type tag (`*f` in the Task Pool layout).
    pub fptr: u64,
    /// Parameter list (may exceed the hardware's per-descriptor limit; the
    /// Task Maestro then chains dummy tasks).
    pub params: Vec<Param>,
    /// Pure execution time on a worker core.
    pub exec: SimTime,
    /// Input-fetch memory cost (`Get Inputs` stage).
    pub read: MemCost,
    /// Output-writeback memory cost (`Put Outputs` stage).
    pub write: MemCost,
}

impl TaskRecord {
    /// A task with no memory traffic (useful in unit tests).
    pub fn compute_only(id: u64, params: Vec<Param>, exec: SimTime) -> Self {
        TaskRecord {
            id,
            fptr: 0xABCD,
            params,
            exec,
            read: MemCost::None,
            write: MemCost::None,
        }
    }

    /// Number of parameters.
    pub fn n_params(&self) -> usize {
        self.params.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_mode_semantics() {
        assert!(AccessMode::In.reads() && !AccessMode::In.writes());
        assert!(!AccessMode::Out.reads() && AccessMode::Out.writes());
        assert!(AccessMode::InOut.reads() && AccessMode::InOut.writes());
        assert!(AccessMode::In.is_read_only());
        assert!(!AccessMode::InOut.is_read_only());
    }

    #[test]
    fn access_mode_merge() {
        use AccessMode::*;
        assert_eq!(In.merge(In), In);
        assert_eq!(In.merge(Out), InOut);
        assert_eq!(Out.merge(In), InOut);
        assert_eq!(InOut.merge(In), InOut);
        assert_eq!(Out.merge(Out), Out);
    }

    #[test]
    fn access_mode_parse_roundtrip() {
        for m in [AccessMode::In, AccessMode::Out, AccessMode::InOut] {
            assert_eq!(AccessMode::parse(m.as_str()), Some(m));
        }
        assert_eq!(AccessMode::parse("rw"), None);
    }

    #[test]
    fn param_constructors() {
        let p = Param::input(0x1A, 4);
        assert_eq!(p.mode, AccessMode::In);
        assert_eq!(Param::output(0x1B, 4).mode, AccessMode::Out);
        assert_eq!(Param::inout(0x1C, 4).mode, AccessMode::InOut);
    }

    #[test]
    fn task_record_basics() {
        let t = TaskRecord::compute_only(7, vec![Param::input(1, 4)], SimTime::from_us(1));
        assert_eq!(t.n_params(), 1);
        assert!(t.read.is_none());
        assert!(t.write.is_none());
    }
}
