//! # nexuspp-trace — task descriptors and traces
//!
//! The Nexus++ evaluation is *trace driven*: "Tasks information are read
//! from experimental traces, which include tasks input/output information,
//! and also their execution and memory access times." This crate is the
//! data model for those traces:
//!
//! * [`types`] — [`AccessMode`], [`Param`] (base address, size, access
//!   mode — exactly the triplet a StarSs pragma produces) and
//!   [`TaskRecord`] (parameters + execution/read/write costs),
//! * [`trace`] — in-memory [`Trace`]s with aggregate statistics, and the
//!   streaming [`TraceSource`] abstraction that lets multi-million-task
//!   workloads (Gaussian n=5000 has 12.5 M tasks) run without
//!   materialization,
//! * [`mod@format`] — a line-oriented text serialization (`.ntr`) standing in
//!   for the authors' Cell trace files,
//! * [`normalize`] — parameter-list hygiene (duplicate-address merging and
//!   validation) applied before descriptors reach the hardware model.

pub mod format;
pub mod normalize;
pub mod trace;
pub mod types;

pub use crate::trace::{Trace, TraceSource, TraceStats, VecSource};
pub use types::{AccessMode, MemCost, Param, TaskRecord};
