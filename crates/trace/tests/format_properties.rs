//! Property tests of the `.ntr` serialization: every representable trace
//! round-trips exactly.

use nexuspp_desim::SimTime;
use nexuspp_trace::format::{trace_from_str, trace_to_string};
use nexuspp_trace::{AccessMode, MemCost, Param, TaskRecord, Trace};
use proptest::prelude::*;

fn mode_strategy() -> impl Strategy<Value = AccessMode> {
    prop_oneof![
        Just(AccessMode::In),
        Just(AccessMode::Out),
        Just(AccessMode::InOut),
    ]
}

fn cost_strategy() -> impl Strategy<Value = MemCost> {
    prop_oneof![
        Just(MemCost::None),
        any::<u64>().prop_map(|ps| MemCost::Time(SimTime::from_ps(ps))),
        any::<u64>().prop_map(MemCost::Bytes),
    ]
}

prop_compose! {
    fn record_strategy()(
        id in any::<u64>(),
        fptr in any::<u64>(),
        params in prop::collection::vec(
            (any::<u64>(), any::<u32>(), mode_strategy()),
            0..12
        ),
        exec_ps in any::<u64>(),
        read in cost_strategy(),
        write in cost_strategy(),
    ) -> TaskRecord {
        TaskRecord {
            id,
            fptr,
            params: params
                .into_iter()
                .map(|(a, s, m)| Param::new(a, s, m))
                .collect(),
            exec: SimTime::from_ps(exec_ps),
            read,
            write,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ntr_roundtrip(
        name in "[a-zA-Z0-9 _.-]{0,24}",
        tasks in prop::collection::vec(record_strategy(), 0..24),
    ) {
        let trace = Trace::from_tasks(name, tasks);
        let text = trace_to_string(&trace);
        let back = trace_from_str(&text).expect("own output must parse");
        prop_assert_eq!(trace, back);
    }

    /// Parsing never panics on arbitrary input (errors are values).
    #[test]
    fn parser_total_on_garbage(input in "\\PC{0,256}") {
        let _ = trace_from_str(&input);
    }

    /// Parsing never panics on near-miss input (structured lines with
    /// random fields).
    #[test]
    fn parser_total_on_near_misses(
        a in any::<i64>(),
        b in "[a-z0-9]{1,8}",
        c in any::<u32>(),
    ) {
        let near = format!("ntr 1 x\nt {a} {b} e{c} r- w-\np {b} {c} in\np\nq {a}\n");
        let _ = trace_from_str(&near);
    }
}
