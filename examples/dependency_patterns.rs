//! The four dependency patterns of Figure 4, their parallelism profiles,
//! and how each one scales on Nexus++ (Figure 7 in miniature).
//!
//! ```sh
//! cargo run --release --example dependency_patterns
//! ```

use nexuspp::taskmachine::{simulate_trace, MachineConfig};
use nexuspp::workloads::analysis::parallelism_profile;
use nexuspp::workloads::{GridPattern, GridSpec};

/// Render a compact ASCII sparkline of the ready-task curve.
fn sparkline(widths: &[usize], buckets: usize) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if widths.is_empty() {
        return String::new();
    }
    let max = *widths.iter().max().unwrap() as f64;
    let chunk = widths.len().div_ceil(buckets);
    widths
        .chunks(chunk)
        .map(|c| {
            let avg = c.iter().sum::<usize>() as f64 / c.len() as f64;
            let idx = ((avg / max) * 7.0).round() as usize;
            GLYPHS[idx.min(7)]
        })
        .collect()
}

fn main() {
    let spec = GridSpec::default();
    println!(
        "{:<16} {:>6} {:>9} {:>7} {:>7}  ready-tasks-over-time",
        "pattern", "tasks", "critical", "max||", "avg||"
    );
    for pat in GridPattern::all() {
        let trace = spec.generate(pat);
        let p = parallelism_profile(&trace);
        println!(
            "{:<16} {:>6} {:>9} {:>7} {:>7.1}  {}",
            pat.name(),
            p.tasks,
            p.critical_path(),
            p.max_parallelism(),
            p.avg_parallelism(),
            sparkline(&p.widths, 40)
        );
    }

    println!("\nspeedup at 8 / 32 / 64 cores (contention on, double buffering):");
    for pat in GridPattern::all() {
        let trace = spec.generate(pat);
        let base = simulate_trace(MachineConfig::with_workers(1), &trace).unwrap();
        print!("{:<16}", pat.name());
        for cores in [8usize, 32, 64] {
            let r = simulate_trace(MachineConfig::with_workers(cores), &trace).unwrap();
            print!(" {:>6.1}x", base.makespan / r.makespan);
        }
        println!();
    }
    println!(
        "\nhorizontal chains align with generation order, so ready tasks surface \
         only once per submitted row — the \"at most 8 cores\" effect; vertical \
         chains expose a whole row at once and scale to 64 cores (Figure 7)."
    );
}
