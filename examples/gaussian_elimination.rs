//! Gaussian elimination with partial pivoting — both for real (on the
//! threaded runtime, verified against a sequential solver) and simulated
//! on Nexus++ hardware (a slice of Figure 8).
//!
//! The task graph is the paper's Figure 5: per elimination step, one pivot
//! task on column `i` and `n−i` update tasks that read column `i` and
//! update their own column. The `n−i`-way fan-out of the pivot column is
//! what overflows fixed Kick-Off Lists and motivates dummy entries.
//!
//! ```sh
//! cargo run --release --example gaussian_elimination
//! ```

use nexuspp::runtime::{Region, Runtime};
use nexuspp::taskmachine::{simulate, MachineConfig};
use nexuspp::workloads::GaussianSpec;

/// Sequential LU factorization with partial pivoting (column-major),
/// returning the factored matrix for comparison.
fn sequential_ge(mut cols: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
    let n = cols.len();
    for i in 0..n {
        // Pivot: find the row with max |col_i[r]| for r ≥ i.
        let (mut pr, mut pv) = (i, cols[i][i].abs());
        for (r, v) in cols[i].iter().enumerate().skip(i + 1) {
            if v.abs() > pv {
                pr = r;
                pv = v.abs();
            }
        }
        if pr != i {
            // Deferred interchange as in LINPACK's dgefa: only the active
            // trailing columns swap (the task graph does the same — column
            // j applies step i's interchange inside task T_ji).
            for col in cols[i..].iter_mut() {
                col.swap(i, pr);
            }
        }
        let piv = cols[i][i];
        if piv == 0.0 {
            continue;
        }
        for v in cols[i][i + 1..n].iter_mut() {
            *v /= piv;
        }
        // Update trailing columns.
        let (pivot_col, rest) = cols[i..].split_first_mut().expect("i < n");
        for col in rest {
            let m = col[i];
            for (v, l) in col[i + 1..n].iter_mut().zip(&pivot_col[i + 1..n]) {
                *v -= l * m;
            }
        }
    }
    cols
}

/// The same factorization as a task graph on the runtime. One region per
/// column; a shared "pivot row index" region carries the interchange
/// decision from the pivot task to the update tasks (declared inout/input
/// so the dataflow is explicit).
fn parallel_ge(rt: &Runtime, cols: &[Region<f64>], pivots: &[Region<usize>]) {
    let n = cols.len();
    for i in 0..n {
        // Pivot task T_ii: search + swap + scale column i.
        {
            let ci = cols[i].clone();
            let pi = pivots[i].clone();
            rt.task()
                .inout(&cols[i])
                .output(&pivots[i])
                .spawn(move |t| {
                    let mut c = t.write(&ci);
                    let (mut pr, mut pv) = (i, c[i].abs());
                    for r in i + 1..c.len() {
                        if c[r].abs() > pv {
                            pr = r;
                            pv = c[r].abs();
                        }
                    }
                    c.swap(i, pr);
                    let piv = c[i];
                    if piv != 0.0 {
                        for r in i + 1..c.len() {
                            c[r] /= piv;
                        }
                    }
                    t.write(&pi)[0] = pr;
                });
        }
        // Update tasks T_ji: apply the interchange and the elimination.
        for j in i + 1..n {
            let ci = cols[i].clone();
            let cj = cols[j].clone();
            let pi = pivots[i].clone();
            rt.task()
                .input(&cols[i])
                .input(&pivots[i])
                .inout(&cols[j])
                .spawn(move |t| {
                    let l = t.read(&ci);
                    let pr = t.read(&pi)[0];
                    let mut c = t.write(&cj);
                    c.swap(i, pr);
                    let m = c[i];
                    for r in i + 1..c.len() {
                        c[r] -= l[r] * m;
                    }
                });
        }
    }
}

fn main() {
    // ------------------------------------------------------------------
    // Part 1 — real factorization on the threaded runtime.
    // ------------------------------------------------------------------
    const N: usize = 48;
    let mut seed = 0x5EEDu64;
    let mut next = || {
        // xorshift64* — deterministic test matrix.
        seed ^= seed >> 12;
        seed ^= seed << 25;
        seed ^= seed >> 27;
        (seed.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let cols: Vec<Vec<f64>> = (0..N).map(|_| (0..N).map(|_| next()).collect()).collect();

    let reference = sequential_ge(cols.clone());

    let rt = Runtime::new(8);
    let regions: Vec<Region<f64>> = cols.iter().map(|c| rt.region(c.clone())).collect();
    let pivots: Vec<Region<usize>> = (0..N).map(|_| rt.region(vec![0usize])).collect();
    parallel_ge(&rt, &regions, &pivots);
    rt.barrier();

    let mut max_err = 0.0f64;
    for (j, r) in regions.iter().enumerate() {
        rt.with_data(r, |c| {
            for (x, y) in c.iter().zip(&reference[j]) {
                max_err = max_err.max((x - y).abs());
            }
        });
    }
    println!("parallel GE ({N}×{N}) vs sequential: max |Δ| = {max_err:.3e}");
    assert!(max_err < 1e-12, "parallel factorization diverged");
    println!("runtime factorization matches the sequential solver.");

    // ------------------------------------------------------------------
    // Part 2 — the same task-graph shape on simulated Nexus++ hardware.
    // ------------------------------------------------------------------
    println!("\nsimulated speedups (Figure 8 slice, memory contention on):");
    for n in [250u32, 500] {
        let spec = GaussianSpec::new(n);
        let mut src = spec.source();
        let base = simulate(MachineConfig::with_workers(1), &mut src).unwrap();
        print!("  n={n:>4} ({} tasks): ", spec.task_count());
        for cores in [2usize, 4, 8, 16, 32, 64] {
            let mut src = spec.source();
            let r = simulate(MachineConfig::with_workers(cores), &mut src).unwrap();
            print!("{}c={:.1}x ", cores, base.makespan / r.makespan);
        }
        println!();
    }
    println!(
        "\nfine-grained matrices saturate early (manager-limited); the paper's \
         n=5000 case reaches ≈45x at 64 cores (run `repro fig8 --full`)."
    );
}
