//! H.264 macroblock wavefront decoding (the paper's flagship workload).
//!
//! Reproduces a slice of Figure 7: the speedup of the 120×68-macroblock
//! wavefront versus independent tasks, under memory contention, with
//! double buffering — and shows the ramp effect that limits it.
//!
//! ```sh
//! cargo run --release --example h264_wavefront
//! ```

use nexuspp::baseline::ideal_makespan;
use nexuspp::hw::MemoryConfig;
use nexuspp::taskmachine::{simulate_trace, MachineConfig};
use nexuspp::workloads::analysis::parallelism_profile;
use nexuspp::workloads::{GridPattern, GridSpec};

fn main() {
    let spec = GridSpec::default();
    let wavefront = spec.generate(GridPattern::Wavefront);
    let independent = spec.generate(GridPattern::Independent);

    // The ramp effect (Fig 4a): available parallelism over time.
    let profile = parallelism_profile(&wavefront);
    println!(
        "wavefront structure: {} tasks, critical path {}, peak parallelism {}, avg {:.1}",
        profile.tasks,
        profile.critical_path(),
        profile.max_parallelism(),
        profile.avg_parallelism()
    );
    let w = &profile.widths;
    println!(
        "ramp: round 0 → {} ready; round {} → {} ready; final round → {} ready",
        w[0],
        w.len() / 2,
        w[w.len() / 2],
        w[w.len() - 1]
    );

    println!("\nspeedup vs one core (memory contention on, double buffering):");
    println!(
        "{:>6} {:>12} {:>12} {:>10}",
        "cores", "wavefront", "independent", "ideal-wf"
    );
    let base_wf = simulate_trace(MachineConfig::with_workers(1), &wavefront).unwrap();
    let base_ind = simulate_trace(MachineConfig::with_workers(1), &independent).unwrap();
    let mem = MemoryConfig::default();
    let mut src = wavefront.clone().into_source();
    let ideal1 = ideal_makespan(&mut src, 1, &mem);
    for cores in [2, 4, 8, 16, 32, 64, 128] {
        let wf = simulate_trace(MachineConfig::with_workers(cores), &wavefront).unwrap();
        let ind = simulate_trace(MachineConfig::with_workers(cores), &independent).unwrap();
        let mut src = wavefront.clone().into_source();
        let ideal = ideal1 / ideal_makespan(&mut src, cores, &mem);
        println!(
            "{:>6} {:>11.1}x {:>11.1}x {:>9.1}x",
            cores,
            base_wf.makespan / wf.makespan,
            base_ind.makespan / ind.makespan,
            ideal
        );
    }
    println!(
        "\nthe wavefront saturates near its ramp-limited parallelism while the \
         independent benchmark runs into the 32-bank memory ceiling — exactly \
         the Figure 7 contrast."
    );
}
