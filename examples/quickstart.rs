//! Quickstart: simulate a StarSs-style workload on a multicore with
//! Nexus++, and execute a real task graph on the threaded runtime.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use nexuspp::runtime::Runtime;
use nexuspp::taskmachine::{simulate_trace, MachineConfig};
use nexuspp::workloads::{GridPattern, GridSpec};

fn main() {
    // ------------------------------------------------------------------
    // Part 1 — cycle-level simulation (the paper's evaluation flow).
    // ------------------------------------------------------------------
    // The H.264 wavefront benchmark: 8160 macroblock-decode tasks whose
    // dependencies Nexus++ discovers from their input/output addresses.
    let trace = GridSpec::default().generate(GridPattern::Wavefront);
    println!("workload: {} ({} tasks)", trace.name, trace.len());
    let stats = trace.stats();
    println!(
        "  mean exec {} | mean memory {} per task",
        stats.mean_exec(),
        stats.mean_mem_time()
    );

    println!("\nsimulating on 1..64 worker cores (Table IV configuration):");
    let base = simulate_trace(MachineConfig::with_workers(1), &trace).expect("simulation");
    println!("  1 core : makespan {}", base.makespan);
    for workers in [4, 16, 64] {
        let r = simulate_trace(MachineConfig::with_workers(workers), &trace).expect("simulation");
        println!(
            "  {:>2} cores: makespan {:>12}  speedup {:>5.1}x  worker util {:>4.1}%",
            workers,
            r.makespan.to_string(),
            base.makespan / r.makespan,
            r.worker_utilization() * 100.0
        );
    }

    // ------------------------------------------------------------------
    // Part 2 — real execution on the threaded StarSs-like runtime.
    // ------------------------------------------------------------------
    // A tiny 3-stage pipeline: scale → offset → checksum, with the same
    // input/output annotations a StarSs pragma would carry.
    let rt = Runtime::new(4);
    let input = rt.region((1..=1000u64).collect::<Vec<_>>());
    let scaled = rt.region(vec![0u64; 1000]);
    let total = rt.region(vec![0u64]);

    {
        let (i, s) = (input.clone(), scaled.clone());
        rt.task().input(&input).output(&scaled).spawn(move |t| {
            let iv = t.read(&i);
            let mut sv = t.write(&s);
            for k in 0..iv.len() {
                sv[k] = iv[k] * 7;
            }
        });
    }
    {
        let (s, tot) = (scaled.clone(), total.clone());
        rt.task().input(&scaled).output(&total).spawn(move |t| {
            let sv = t.read(&s);
            t.write(&tot)[0] = sv.iter().sum();
        });
    }
    rt.barrier();
    let sum = rt.with_data(&total, |v| v[0]);
    println!("\nruntime pipeline checksum: {sum}");
    assert_eq!(sum, 7 * (1..=1000u64).sum::<u64>());
    println!("quickstart OK");
}
