//! Incremental re-execution: edit a program, re-run only the fallout.
//!
//! Builds a small image pipeline as an editable `IncrementalProgram`,
//! runs it from scratch, then applies a sequence of edits — a changed
//! input, a retargeted task, a removed stage — and shows per edit what
//! the incremental layer re-executed versus spliced from the memo
//! store, and what the Pearce–Kelly order maintainer paid to keep the
//! topological order valid. Finishes with the 1000-task stencil the
//! benchmarks use, contrasting from-scratch and 1-edit wall clock.
//!
//! ```sh
//! cargo run --release --example incremental_edits
//! ```

use nexuspp::frontend::Lowering;
use nexuspp::incr::{Access, Backend, Edit, IncrementalProgram};
use nexuspp::workloads::IncrStencilSpec;
use std::time::Instant;

fn report(label: &str, rep: &nexuspp::incr::IncrReport) {
    println!(
        "  {label:<28} reran {:>3} | reused {:>3} | cone {:>3} | order ops {}",
        rep.reran, rep.reused, rep.dirtied, rep.order_maintenance_ops
    );
}

fn main() {
    // ------------------------------------------------------------------
    // Part 1 — an editable pipeline: in -> blur -> sharpen -> stats,
    //          plus an independent thumbnail stage.
    // ------------------------------------------------------------------
    let mut ip = IncrementalProgram::new();
    let stages: [(u64, u64, &str, &str); 3] = [
        (1, 0x10, "in", "blurred"),
        (2, 0x11, "blurred", "sharp"),
        (3, 0x12, "sharp", "stats"),
    ];
    for (key, fptr, src, dst) in stages {
        ip.edit(Edit::AddTask {
            key,
            fptr,
            priority: Default::default(),
            accesses: vec![Access::Read(src.into()), Access::Write(dst.into())],
        })
        .unwrap();
    }
    ip.edit(Edit::AddTask {
        key: 4,
        fptr: 0x13,
        priority: Default::default(),
        accesses: vec![Access::Read("in".into()), Access::Write("thumb".into())],
    })
    .unwrap();

    let backend = Backend::Engine { shards: 2 };
    println!("pipeline (4 tasks):");
    report(
        "first run (from scratch)",
        &ip.rerun(Lowering::Renamed, &backend),
    );

    // A changed input dirties everything downstream of "in"...
    ip.edit(Edit::SetInitial {
        resource: "in".into(),
        seed: 7,
    })
    .unwrap();
    report(
        "edit: new input contents",
        &ip.rerun(Lowering::Renamed, &backend),
    );

    // ...but retargeting the thumbnail to read the sharpened image
    // re-runs only the thumbnail.
    ip.edit(Edit::Retarget {
        key: 4,
        accesses: vec![Access::Read("sharp".into()), Access::Write("thumb".into())],
    })
    .unwrap();
    report(
        "edit: retarget thumbnail",
        &ip.rerun(Lowering::Renamed, &backend),
    );

    // A cycle-creating edit is rejected before anything mutates: stats
    // sits downstream of task 1 (blur -> sharpen -> stats), so pinning
    // task 1 to the minted "stats" version closes a loop.
    let err = ip
        .edit(Edit::Retarget {
            key: 1,
            accesses: vec![
                Access::ReadVersion("stats".into(), 1),
                Access::Write("blurred".into()),
            ],
        })
        .unwrap_err();
    println!("  rejected at declaration time: {err}");
    report(
        "after rejected edit (no-op)",
        &ip.rerun(Lowering::Renamed, &backend),
    );

    // Removing the sharpen stage rebinds its readers; only the rebound
    // consumers re-run.
    ip.edit(Edit::RemoveTask { key: 2 }).unwrap();
    report(
        "edit: remove sharpen stage",
        &ip.rerun(Lowering::Renamed, &backend),
    );

    // ------------------------------------------------------------------
    // Part 2 — the benchmark stencil: 100 cells x 10 steps.
    // ------------------------------------------------------------------
    let spec = IncrStencilSpec::thousand();
    let mut ip = spec.build();
    let backend = Backend::Engine { shards: 4 };

    let t0 = Instant::now();
    let full = ip.rerun(Lowering::Renamed, &backend);
    let full_ms = t0.elapsed().as_secs_f64() * 1e3;

    ip.edit_batch(spec.touch_edits(1, 1)).unwrap();
    let t1 = Instant::now();
    let one = ip.rerun(Lowering::Renamed, &backend);
    let one_ms = t1.elapsed().as_secs_f64() * 1e3;

    println!("\nstencil ({} tasks):", spec.task_count());
    println!("  from scratch: {:>4} reran, {full_ms:>7.2} ms", full.reran);
    println!(
        "  1-cell edit:  {:>4} reran, {one_ms:>7.2} ms  ({:.1}x faster)",
        one.reran,
        full_ms / one_ms.max(1e-9)
    );
}
