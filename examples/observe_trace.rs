//! Observing a run: attach a [`Recorder`] to the sharded runtime, run a
//! small dependent workload, and turn the lifecycle event stream into a
//! Chrome-trace file plus a per-task latency breakdown.
//!
//! ```sh
//! cargo run --release --example observe_trace
//! ```
//!
//! The trace lands in `observe_trace.json`; open it at
//! `chrome://tracing` (or <https://ui.perfetto.dev>) to see one row per
//! worker with an `exec` slice per task.

use nexuspp::core::ShardCapacity;
use nexuspp::obs::{self, Recorder};
use nexuspp::runtime::ShardedRuntime;
use nexuspp::sched::SchedulerKind;
use nexuspp::shard::WakeMode;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let workers = 4;
    let rec = Arc::new(Recorder::new(workers));
    let rt = ShardedRuntime::with_recorder(
        workers,
        4,
        SchedulerKind::WorkStealing,
        ShardCapacity::Unbounded,
        WakeMode::LockFree,
        Arc::clone(&rec),
    );

    // Four dependence chains of eight tasks each (WAW on one region per
    // chain) plus eight independent tasks: enough structure for wake
    // edges and a non-trivial critical path, small enough to eyeball.
    let chains: Vec<_> = (0..4).map(|_| rt.region(vec![0u64])).collect();
    for _ in 0..8 {
        for r in &chains {
            rt.task().inout(r).spawn(|_| {
                std::thread::sleep(Duration::from_micros(200));
            });
        }
    }
    for _ in 0..8 {
        let r = rt.region(vec![0u64]);
        rt.task().output(&r).spawn(|_| {
            std::thread::sleep(Duration::from_micros(200));
        });
    }
    rt.barrier();

    let mut events = rec.drain();
    events.sort_by_key(|e| e.seq);
    println!(
        "recorded {} events ({} dropped)",
        rec.recorded(),
        rec.dropped()
    );

    // Per-stage latency breakdown over every task's lifecycle.
    let tl = obs::timelines(&events);
    let lat = obs::latency_breakdown(&tl);
    for (stage, s) in [
        ("submit -> ready", &lat.submit_to_ready),
        ("ready  -> start", &lat.ready_to_start),
        ("start  -> done ", &lat.start_to_done),
        ("done   -> finish", &lat.done_to_finish),
    ] {
        println!(
            "{stage}: mean {:>9.0} ns  p50 {:>8} ns  max {:>8} ns  (n = {})",
            s.mean_ns, s.p50_ns, s.max_ns, s.count
        );
    }

    // The observed critical path follows the recorded wake edges.
    let cp = obs::observed_critical_path(&events);
    println!("observed critical path: {} tasks", cp.length);

    // Chrome-trace export, validated before it hits disk.
    let json = obs::chrome_trace(&events);
    obs::validate_json(&json).expect("exporter emits valid JSON");
    std::fs::write("observe_trace.json", &json).expect("write observe_trace.json");
    println!(
        "wrote observe_trace.json ({} bytes) — open in chrome://tracing",
        json.len()
    );
}
