//! Version pipeline: the resource-versioning frontend end to end.
//!
//! Declares a rename-heavy program (a buffer refilled in a loop plus a
//! halo-exchange stencil) by resource *names*, lowers it twice — once
//! renamed (each logical version gets its own address), once raw (every
//! version of a resource shares one address, as a hand-addressed
//! encoding that reuses buffers would) — and shows what renaming buys:
//! the same task set, the same true dependencies, but a fraction of the
//! critical path and a multiple of the available parallelism.
//!
//! ```sh
//! cargo run --release --example version_pipeline
//! ```

use nexuspp::frontend::{Lowering, Program};
use nexuspp::runtime::ShardedRuntime;
use nexuspp::workloads::analysis::parallelism_profile;
use nexuspp::workloads::VersionStressSpec;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    // ------------------------------------------------------------------
    // Part 1 — declaring a program by named resources.
    // ------------------------------------------------------------------
    let mut p = Program::new();
    p.resource("frame");
    for pass in 0..4u64 {
        // Each pass reads the previous version and mints the next.
        p.task(0x100 + pass).read_writes("frame").submit().unwrap();
    }
    // An archival task pinned to the *initial* contents: under renaming
    // it can run immediately, concurrent with every refinement pass.
    p.task(0x200)
        .reads_version("frame", 0)
        .writes("archive")
        .submit()
        .unwrap();

    for lowering in [Lowering::Renamed, Lowering::Raw] {
        let lp = p.lower(lowering).unwrap();
        println!(
            "{:>7}: {} tasks, {} true edges, first addr {:#x}",
            lowering.name(),
            lp.tasks.len(),
            lp.edges.len(),
            lp.tasks[0].params[0].addr
        );
    }

    // ------------------------------------------------------------------
    // Part 2 — what renaming buys, structurally.
    // ------------------------------------------------------------------
    let spec = VersionStressSpec::renaming_heavy();
    println!(
        "\nversion-stress ({} chain writes + {} stencil tasks):",
        spec.chains * spec.chain_len,
        spec.cells * spec.steps
    );
    for lowering in [Lowering::Renamed, Lowering::Raw] {
        let profile = parallelism_profile(&spec.trace(lowering));
        println!(
            "  {:>7}: critical path {:>3} rounds | avg parallelism {:>6.1} | peak {:>4}",
            lowering.name(),
            profile.critical_path(),
            profile.avg_parallelism(),
            profile.max_parallelism()
        );
    }

    // ------------------------------------------------------------------
    // Part 3 — what renaming buys, measured on real threads.
    // ------------------------------------------------------------------
    // A single version chain: strictly serial raw, fully parallel
    // renamed. Each task sleeps 2 ms; 4 workers race through both.
    println!("\nexecuting a 16-deep version chain on 4 workers (2 ms/task):");
    for lowering in [Lowering::Renamed, Lowering::Raw] {
        let lp = VersionStressSpec::single_chain(16).lowered(lowering);
        let rt = ShardedRuntime::new(4, 2);
        let in_flight = Arc::new(AtomicU32::new(0));
        let peak = Arc::new(AtomicU32::new(0));
        let start = Instant::now();
        for sub in lp.tasks.iter().cloned() {
            let (in_flight, peak) = (Arc::clone(&in_flight), Arc::clone(&peak));
            rt.spawn_lowered(sub, move || {
                let now = in_flight.fetch_add(1, Ordering::AcqRel) + 1;
                peak.fetch_max(now, Ordering::AcqRel);
                std::thread::sleep(Duration::from_millis(2));
                in_flight.fetch_sub(1, Ordering::AcqRel);
            });
        }
        rt.barrier();
        println!(
            "  {:>7}: wall {:>6.1} ms | peak executed width {}",
            lowering.name(),
            start.elapsed().as_secs_f64() * 1e3,
            peak.load(Ordering::Acquire)
        );
    }
}
