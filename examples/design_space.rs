//! Design-space exploration (Figure 6): how big do the Task Pool and the
//! Dependence Table need to be?
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use nexuspp::core::NexusConfig;
use nexuspp::taskmachine::{simulate_trace, MachineConfig};
use nexuspp::workloads::{GridPattern, GridSpec};

fn machine(workers: usize, tp: usize, dt: usize) -> MachineConfig {
    let mut cfg = MachineConfig::with_workers(workers).contention_free();
    cfg.nexus = NexusConfig {
        task_pool_entries: tp,
        dep_table_entries: dt,
        ..NexusConfig::default()
    };
    cfg
}

fn main() {
    const WORKERS: usize = 256;
    let trace = GridSpec::default().generate(GridPattern::Independent);
    let base = simulate_trace(machine(1, 8192, 8192), &trace).unwrap();
    println!(
        "independent tasks, {WORKERS} cores, contention-free, double buffering \
         (1-core makespan {})",
        base.makespan
    );

    println!("\nDependence Table sweep (Task Pool fixed at 8K):");
    println!(
        "{:>12} {:>9} {:>14} {:>12}",
        "DT entries", "speedup", "longest chain", "check stalls"
    );
    for dt in [256usize, 512, 1024, 2048, 4096, 8192] {
        let r = simulate_trace(machine(WORKERS, 8192, dt), &trace).unwrap();
        println!(
            "{:>12} {:>8.1}x {:>14} {:>12}",
            dt,
            base.makespan / r.makespan,
            r.table.max_chain_len,
            r.check_deps.stalls
        );
    }

    println!("\nTask Pool sweep (Dependence Table fixed at 8K):");
    println!(
        "{:>12} {:>9} {:>12} {:>13}",
        "TP entries", "speedup", "peak in use", "master stalls"
    );
    for tp in [128usize, 256, 512, 1024, 2048, 8192] {
        let r = simulate_trace(machine(WORKERS, tp, 8192), &trace).unwrap();
        println!(
            "{:>12} {:>8.1}x {:>12} {:>13}",
            tp,
            base.makespan / r.makespan,
            r.pool.peak_occupancy,
            r.master_stalls
        );
    }

    println!(
        "\npaper: speedup saturates once TP ≥ cores × buffering depth (512 at 256 \
         cores) and DT ≥ the live address working set; Table IV picks 1K/4K for \
         headroom. Hash chains shorten as the table grows — the third curve of Fig 6."
    );
}
